//! The standard invariant checkers.
//!
//! Each checker walks the trace with its own small local state so it
//! can be enabled, disabled and counted independently; the shared
//! bookkeeping (resident map, current-graph cursor) is cheap enough
//! that a handful of checkers carrying private copies beats one
//! monolithic pass with entangled assertions. The assertion *logic* is
//! single-sited: every invariant lives in exactly one checker, and the
//! test suites and the `vopr` fuzz campaigns all call the same
//! registry.

use super::{CheckContext, CheckOutput, Checker};
use crate::job::JobSpec;
use crate::trace::{FaultKind, TraceEvent};
use rtr_sim::SimTime;
use rtr_taskgraph::{reconfiguration_sequence, ConfigId, NodeId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Every checker this crate defines, in canonical order.
pub fn standard_checkers() -> Vec<Box<dyn Checker>> {
    vec![
        Box::new(ArrivalOrder),
        Box::new(PortLanes),
        Box::new(RuIntervals),
        Box::new(TaskLifecycle),
        Box::new(Precedence),
        Box::new(ReuseResidency),
        Box::new(PrefetchGuard),
        Box::new(CounterEquality),
        Box::new(TrafficEquality),
        Box::new(PrefetchAccounting),
        Box::new(PrefetchOffInvisible),
        Box::new(NoLostWork),
        Box::new(PreemptionOrder),
        Box::new(QosAccounting),
        Box::new(FaultRetryBounded),
        Box::new(QuarantineIsolation),
        Box::new(CorruptNeverReused),
        Box::new(FaultAccounting),
        Box::new(PooledIdentity),
        Box::new(TenantIsolation),
        Box::new(PlacementResidency),
        Box::new(FleetAccounting),
    ]
}

/// True when the trace records any fault-subsystem event. The
/// recovery-lane re-queues reorder the demand request stream, so the
/// linear-stream checkers (`prefetch-guard`) relax on fault runs — the
/// fault checkers own the tightened assertions there.
fn faults_active(cx: &CheckContext<'_>) -> bool {
    cx.trace.iter().any(|e| {
        matches!(
            e,
            TraceEvent::FaultInject { .. }
                | TraceEvent::FaultRetry { .. }
                | TraceEvent::FaultGiveUp { .. }
                | TraceEvent::RuQuarantine { .. }
                | TraceEvent::RuHeal { .. }
        )
    })
}

/// True when the trace or the workload leaves the strict-FIFO regime:
/// priority lanes reorder activations and preemptions interleave
/// graphs, so the order-sensitive checkers relax (their QoS-aware
/// counterparts take over the tightened assertions).
fn qos_active(cx: &CheckContext<'_>) -> bool {
    cx.jobs.iter().any(|j| j.qos.priority != 0) || cx.trace.counts().preemptions > 0
}

/// Activation order: arrival time, ties broken by submission index
/// (the engine's online queue is FIFO per instant).
fn activation_order(jobs: &[JobSpec]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..jobs.len() as u32).collect();
    order.sort_by_key(|&i| (jobs[i as usize].arrival, i));
    order
}

/// Per-job design-time configuration sequences (the order placements
/// follow).
fn config_sequences(jobs: &[JobSpec]) -> Vec<Vec<ConfigId>> {
    jobs.iter()
        .map(|j| {
            reconfiguration_sequence(&j.graph)
                .into_iter()
                .map(|n| j.graph.config_of(n))
                .collect()
        })
        .collect()
}

/// Graph executions are sequential, never before the job's arrival,
/// and every started graph ends. On strict-FIFO runs (no priority
/// lanes, no preemptions) activations additionally follow arrival
/// order; under QoS the activation order is priority-driven and the
/// `preemption-order` checker owns the ordering assertions instead.
struct ArrivalOrder;

impl Checker for ArrivalOrder {
    fn name(&self) -> &'static str {
        "arrival-order"
    }
    fn description(&self) -> &'static str {
        "graphs activate sequentially in arrival order and all complete"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let jobs = cx.jobs;
        let fifo = !qos_active(cx);
        let expected_order = activation_order(jobs);
        let mut graph_started: Vec<u32> = Vec::new();
        let mut last_ended: Option<(u32, SimTime)> = None;
        let mut ended = 0usize;
        let mut current_graph: Option<u32> = None;
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::JobArrival { job, at } => {
                    out.probe(
                        jobs.get(job as usize).map(|j| j.arrival) == Some(at),
                        || {
                            format!(
                                "job {job} arrived at {at}, but its spec says {:?}",
                                jobs.get(job as usize).map(|j| j.arrival)
                            )
                        },
                    );
                }
                TraceEvent::GraphStart { job, at } => {
                    out.probe(current_graph.is_none(), || {
                        format!(
                            "graph {job} started at {at} while graph {current_graph:?} is active"
                        )
                    });
                    if let Some((prev, prev_end)) = last_ended {
                        out.probe(at >= prev_end, || {
                            format!(
                                "graph {job} started at {at} before graph {prev} ended at {prev_end}"
                            )
                        });
                    }
                    out.probe(
                        jobs.get(job as usize).is_none_or(|j| at >= j.arrival),
                        || {
                            format!(
                                "graph {job} started at {at} before its arrival at {:?}",
                                jobs.get(job as usize).map(|j| j.arrival)
                            )
                        },
                    );
                    if fifo {
                        out.probe(
                            expected_order.get(graph_started.len()) == Some(&job),
                            || {
                                format!(
                                    "graphs must start in arrival order {expected_order:?}; \
                             got {job} after {graph_started:?}"
                                )
                            },
                        );
                    }
                    graph_started.push(job);
                    current_graph = Some(job);
                }
                TraceEvent::Preempt { victim, at, .. } => {
                    out.probe(current_graph == Some(victim), || {
                        format!("graph {victim} preempted at {at} but is not current")
                    });
                    current_graph = None;
                }
                TraceEvent::GraphResume { job, at } => {
                    out.probe(current_graph.is_none(), || {
                        format!(
                            "graph {job} resumed at {at} while graph {current_graph:?} is active"
                        )
                    });
                    out.probe(graph_started.contains(&job), || {
                        format!("graph {job} resumed at {at} but never started")
                    });
                    current_graph = Some(job);
                }
                TraceEvent::GraphEnd { job, at } => {
                    out.probe(current_graph == Some(job), || {
                        format!("graph {job} ended at {at} but is not current")
                    });
                    current_graph = None;
                    last_ended = Some((job, at));
                    ended += 1;
                }
                _ => {}
            }
        }
        out.probe(ended == graph_started.len(), || {
            format!("{} graphs started but {ended} ended", graph_started.len())
        });
    }
}

/// Demand and speculative reconfigurations are serialised on the
/// single port: loads and completed prefetches take exactly the
/// device latency, a cancelled prefetch aborts inside its write
/// interval, and a demand load never starts while a speculative one
/// is still in flight.
struct PortLanes;

impl Checker for PortLanes {
    fn name(&self) -> &'static str {
        "port-lanes"
    }
    fn description(&self) -> &'static str {
        "single reconfiguration port serialised across demand and speculative lanes"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let latency = cx.latency;
        let mut port_busy_until: Option<(SimTime, u32)> = None;
        // The single in-flight speculative load
        // `(config, write-window end, ru, retried)` — a backoff retry
        // moves the window end forward.
        let mut pending_prefetch: Option<(ConfigId, SimTime, u16, bool)> = None;
        // Per-RU in-flight demand load `(config, window end, job, node)`.
        let mut pending_load: HashMap<u16, (ConfigId, SimTime, u32, u32)> = HashMap::new();
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::LoadStart {
                    job,
                    node,
                    config,
                    ru,
                    at,
                } => {
                    if let Some((busy_until, j)) = port_busy_until {
                        out.probe(at >= busy_until, || {
                            format!(
                                "load at {at} overlaps in-flight reconfiguration of job {j} \
                                 (busy until {busy_until})"
                            )
                        });
                    }
                    out.probe(pending_prefetch.is_none(), || {
                        format!(
                            "demand load at {at} started while a speculative load of \
                             {pending_prefetch:?} was still in flight (it must be cancelled first)"
                        )
                    });
                    port_busy_until = Some((at + latency, job));
                    pending_load.insert(ru.0, (config, at + latency, job, node.0));
                }
                TraceEvent::LoadEnd {
                    job,
                    node,
                    config,
                    ru,
                    at,
                } => match pending_load.remove(&ru.0) {
                    Some((c, ends, j, n)) => {
                        out.probe(c == config && j == job && n == node.0, || {
                            format!("load end at {at} on {ru} does not match its start")
                        });
                        out.probe(at == ends, || {
                            format!(
                                "load of {config} on {ru} completed at {at}, but its \
                                 write window ends at {ends}"
                            )
                        });
                    }
                    None => out.fail(format!("load end at {at} on {ru} without a start")),
                },
                TraceEvent::PrefetchStart { config, ru, at } => {
                    if let Some((busy_until, j)) = port_busy_until {
                        out.probe(at >= busy_until, || {
                            format!(
                                "speculative load at {at} overlaps job {j}'s demand \
                                 reconfiguration (busy until {busy_until})"
                            )
                        });
                    }
                    out.probe(pending_prefetch.is_none(), || {
                        format!("speculative load at {at} while another one is in flight")
                    });
                    pending_prefetch = Some((config, at + latency, ru.0, false));
                }
                TraceEvent::PrefetchEnd { config, ru, at } => match pending_prefetch.take() {
                    Some((c, ends, r, _)) => {
                        out.probe(c == config && r == ru.0, || {
                            format!("speculative load end at {at} on {ru} does not match its start")
                        });
                        out.probe(at == ends, || {
                            format!(
                                "speculative load of {config} on {ru} completed at {at}, \
                                 but its write window ends at {ends}"
                            )
                        });
                    }
                    None => out.fail(format!(
                        "speculative load end at {at} on {ru} without a start"
                    )),
                },
                TraceEvent::PrefetchCancel { config, ru, at } => match pending_prefetch.take() {
                    Some((c, ends, r, retried)) => {
                        out.probe(c == config && r == ru.0, || {
                            format!(
                                "speculative cancel at {at} on {ru} does not match \
                                 the in-flight load"
                            )
                        });
                        if retried {
                            // A retried speculative load may be cancelled
                            // any time up to its rewrite completion — the
                            // backoff wait before the window is free.
                            out.probe(at <= ends, || {
                                format!(
                                    "speculative retry of {config} cancelled at {at}, \
                                     after its rewrite window ended at {ends}"
                                )
                            });
                        } else {
                            out.probe(at <= ends && ends.saturating_since(at) <= latency, || {
                                format!(
                                    "speculative load of {config} cancelled at {at}, \
                                     outside its write interval (ends {ends})"
                                )
                            });
                        }
                    }
                    None => out.fail(format!(
                        "speculative cancel at {at} on {ru} with nothing in flight"
                    )),
                },
                TraceEvent::FaultRetry {
                    ru,
                    config,
                    until,
                    at,
                    ..
                } => {
                    // The retry re-arms the port: the rewrite occupies
                    // `[until - latency, until]`, moving the pending
                    // operation's window.
                    match pending_prefetch.as_mut() {
                        Some((c, ends, r, retried)) if *r == ru.0 => {
                            out.probe(*c == config, || {
                                format!(
                                    "fault retry at {at} rewrites {config} but the \
                                     in-flight speculative load is of a different \
                                     configuration"
                                )
                            });
                            *ends = until;
                            *retried = true;
                        }
                        _ => match pending_load.get_mut(&ru.0) {
                            Some((c, ends, j, _)) => {
                                out.probe(*c == config, || {
                                    format!(
                                        "fault retry at {at} rewrites {config} but the \
                                         in-flight demand load on {ru} is of a different \
                                         configuration"
                                    )
                                });
                                port_busy_until = Some((until, *j));
                                *ends = until;
                            }
                            None => out.fail(format!(
                                "fault retry at {at} on {ru} with no load in flight"
                            )),
                        },
                    }
                }
                // A speculative give-up is closed by the
                // PrefetchCancel that follows; a demand give-up
                // abandons the load with no LoadEnd.
                TraceEvent::FaultGiveUp { ru, at, .. } if !matches!(pending_prefetch, Some((_, _, r, _)) if r == ru.0) =>
                {
                    out.probe(pending_load.remove(&ru.0).is_some(), || {
                        format!("fault give-up at {at} on {ru} with no load in flight")
                    });
                }
                _ => {}
            }
        }
        // A started speculative load must end or be cancelled.
        out.probe(pending_prefetch.is_none(), || {
            format!("speculative load {pending_prefetch:?} neither completed nor cancelled")
        });
    }
}

/// Per RU, load and execution intervals never overlap, and a
/// speculative load never targets an RU whose resident is claimed
/// (placed but not yet finished) or executing.
struct RuIntervals;

impl Checker for RuIntervals {
    fn name(&self) -> &'static str {
        "ru-intervals"
    }
    fn description(&self) -> &'static str {
        "per-RU load/exec intervals disjoint; prefetch never targets claimed RUs"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let latency = cx.latency;
        let mut ru_busy_until: HashMap<u16, SimTime> = HashMap::new();
        // Placed-but-not-finished tasks per RU (claimed residents —
        // never legal speculative-eviction targets), attributed to the
        // claiming job: a preemption revokes every claim its victim
        // holds (the resumed graph re-places them, emitting fresh
        // `Reuse`/`LoadEnd` events).
        let mut ru_claims: HashMap<u16, Vec<u32>> = HashMap::new();
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::LoadStart { ru, at, .. } => {
                    if let Some(&busy) = ru_busy_until.get(&ru.0) {
                        out.probe(at >= busy, || {
                            format!("{ru} reloaded at {at} while busy until {busy}")
                        });
                    }
                    ru_busy_until.insert(ru.0, at + latency);
                }
                TraceEvent::LoadEnd { job, ru, .. } | TraceEvent::Reuse { job, ru, .. } => {
                    ru_claims.entry(ru.0).or_default().push(job);
                }
                TraceEvent::ExecEnd { job, ru, at, .. } => {
                    ru_busy_until.insert(ru.0, at);
                    if let Some(claims) = ru_claims.get_mut(&ru.0) {
                        if let Some(k) = claims.iter().position(|&j| j == job) {
                            claims.swap_remove(k);
                        }
                    }
                }
                TraceEvent::Preempt { victim, .. } => {
                    for claims in ru_claims.values_mut() {
                        claims.retain(|&j| j != victim);
                    }
                }
                TraceEvent::PrefetchStart { ru, at, .. } => {
                    if let Some(&busy) = ru_busy_until.get(&ru.0) {
                        out.probe(at >= busy, || {
                            format!("{ru} speculatively reloaded at {at} while busy until {busy}")
                        });
                    }
                    out.probe(ru_claims.get(&ru.0).is_none_or(Vec::is_empty), || {
                        format!(
                            "speculative load at {at} targets {ru}, whose resident is \
                             claimed by a placed-but-unfinished task"
                        )
                    });
                    ru_busy_until.insert(ru.0, at + latency);
                }
                TraceEvent::PrefetchCancel { ru, at, .. } => {
                    // The partially written RU holds nothing and is free.
                    ru_busy_until.insert(ru.0, at);
                }
                TraceEvent::FaultRetry { ru, until, .. } => {
                    // The backoff rewrite extends the unit's busy window.
                    ru_busy_until.insert(ru.0, until);
                }
                TraceEvent::RuQuarantine { ru, at, .. } => {
                    // Claims die with the unit (the engine revoked or
                    // released them); the unit returns empty at heal.
                    ru_claims.remove(&ru.0);
                    ru_busy_until.insert(ru.0, at);
                }
                _ => {}
            }
        }
    }
}

/// A task executes exactly once, after its configuration was loaded
/// into or reused on its RU, for exactly its design-time execution
/// time — and every placed task completes by end of trace. Preemption
/// revocations reset a node's life: a killed node replays in full, a
/// checkpointed node's resumed run must take exactly
/// `remainder + restore penalty`.
struct TaskLifecycle;

#[derive(Default, Clone)]
struct NodeLife {
    placed_at: Option<SimTime>, // load end or reuse
    exec_start: Option<SimTime>,
    exec_end: Option<SimTime>,
    ru: Option<u16>,
    /// Expected duration of the *next* run, when a checkpoint changed
    /// it (`remainder + restore penalty`); `None` = design time.
    expected: Option<rtr_sim::SimDuration>,
}

impl Checker for TaskLifecycle {
    fn name(&self) -> &'static str {
        "task-lifecycle"
    }
    fn description(&self) -> &'static str {
        "every task placed once, executed once, for its design-time duration"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let jobs = cx.jobs;
        // BTreeMap so the end-of-trace completeness sweep reports in a
        // deterministic order (fingerprint replays must be byte-equal).
        let mut life: BTreeMap<(u32, u32), NodeLife> = BTreeMap::new();
        let mut graph_started: Vec<u32> = Vec::new();
        let mut execs = 0u64;
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::GraphStart { job, .. } => graph_started.push(job),
                TraceEvent::LoadEnd {
                    job, node, ru, at, ..
                }
                | TraceEvent::Reuse {
                    job, node, ru, at, ..
                } => {
                    let entry = life.entry((job, node.0)).or_default();
                    entry.placed_at = Some(at);
                    entry.ru = Some(ru.0);
                }
                TraceEvent::ExecStart {
                    job, node, ru, at, ..
                } => {
                    let entry = life.entry((job, node.0)).or_default();
                    out.probe(entry.exec_start.is_none(), || {
                        format!("node {node} of job {job} executed twice")
                    });
                    match entry.placed_at {
                        Some(p) => out.probe(at >= p, || {
                            format!(
                                "node {node} of job {job} started at {at} before its \
                                 configuration arrived at {p}"
                            )
                        }),
                        None => out.fail(format!(
                            "node {node} of job {job} started without load or reuse"
                        )),
                    }
                    out.probe(entry.ru == Some(ru.0), || {
                        format!(
                            "node {node} of job {job} executes on {ru} but was placed on RU{:?}",
                            entry.ru.map(|r| r + 1)
                        )
                    });
                    entry.exec_start = Some(at);
                }
                TraceEvent::ExecEnd { job, node, at, .. } => {
                    execs += 1;
                    let entry = life.entry((job, node.0)).or_default();
                    match entry.exec_start {
                        Some(s) => match jobs.get(job as usize) {
                            Some(spec) => {
                                let expected = entry
                                    .expected
                                    .take()
                                    .unwrap_or_else(|| spec.graph.exec_time(NodeId(node.0)));
                                out.probe(at.since(s) == expected, || {
                                    format!(
                                        "node {node} of job {job} ran {} (expected {expected})",
                                        at.since(s)
                                    )
                                });
                            }
                            None => {
                                out.fail(format!("exec end for node {node} of unknown job {job}"))
                            }
                        },
                        None => out.fail(format!(
                            "exec end without start for node {node} of job {job}"
                        )),
                    }
                    out.probe(entry.exec_end.is_none(), || {
                        format!("node {node} of job {job} finished twice")
                    });
                    entry.exec_end = Some(at);
                }
                TraceEvent::NodeKilled { job, node, at, .. } => {
                    let entry = life.entry((job, node.0)).or_default();
                    out.probe(
                        entry.exec_start.is_some() && entry.exec_end.is_none(),
                        || format!("node {node} of job {job} killed at {at} but was not in flight"),
                    );
                    // The replay runs the full design time again from a
                    // fresh placement.
                    entry.exec_start = None;
                    entry.placed_at = None;
                    entry.ru = None;
                    entry.expected = None;
                }
                TraceEvent::FaultInject {
                    kind: FaultKind::RuHard,
                    ru,
                    ..
                } => {
                    // The dead unit's live placement (claimed or
                    // executing) is revoked and the node re-queues for a
                    // fresh placement — reset its life like a kill.
                    for entry in life.values_mut() {
                        if entry.ru == Some(ru.0) && entry.exec_end.is_none() {
                            entry.exec_start = None;
                            entry.placed_at = None;
                            entry.ru = None;
                            entry.expected = None;
                        }
                    }
                }
                TraceEvent::NodeCheckpointed { job, node, at, .. } => {
                    let entry = life.entry((job, node.0)).or_default();
                    match entry.exec_start {
                        Some(s) => {
                            // The resumed run covers the remainder plus
                            // the restore penalty (one reconfiguration).
                            let expected = entry.expected.unwrap_or_else(|| {
                                jobs.get(job as usize)
                                    .map_or(rtr_sim::SimDuration::ZERO, |spec| {
                                        spec.graph.exec_time(NodeId(node.0))
                                    })
                            });
                            entry.expected = Some((s + expected).since(at) + cx.latency);
                        }
                        None => out.fail(format!(
                            "node {node} of job {job} checkpointed at {at} but was not in flight"
                        )),
                    }
                    entry.exec_start = None;
                    entry.placed_at = None;
                    entry.ru = None;
                }
                _ => {}
            }
        }
        // Every placed/executed node ran exactly once with a placement.
        for ((job, node), l) in &life {
            out.probe(l.exec_start.is_some() && l.exec_end.is_some(), || {
                format!("node {node} of job {job} never completed execution")
            });
        }
        // Executed count matches the workload.
        let expected_execs: u64 = graph_started
            .iter()
            .filter_map(|&j| jobs.get(j as usize).map(|s| s.graph.len() as u64))
            .sum();
        out.probe(execs == expected_execs, || {
            format!("trace has {execs} executions, workload requires {expected_execs}")
        });
    }
}

/// A task starts only after all its predecessors finished.
struct Precedence;

impl Checker for Precedence {
    fn name(&self) -> &'static str {
        "precedence"
    }
    fn description(&self) -> &'static str {
        "no task starts before all its graph predecessors finished"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let jobs = cx.jobs;
        let mut exec_end: HashMap<(u32, u32), SimTime> = HashMap::new();
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::ExecStart { job, node, at, .. } => {
                    let Some(spec) = jobs.get(job as usize) else {
                        out.fail(format!("exec start for node {node} of unknown job {job}"));
                        continue;
                    };
                    for &p in spec.graph.preds(NodeId(node.0)) {
                        match exec_end.get(&(job, p.0)) {
                            Some(&e) => out.probe(at >= e, || {
                                format!(
                                    "node {node} of job {job} started at {at} before \
                                     predecessor {p} finished at {e}"
                                )
                            }),
                            None => out.fail(format!(
                                "node {node} of job {job} started before predecessor {p} ran"
                            )),
                        }
                    }
                }
                TraceEvent::ExecEnd { job, node, at, .. } => {
                    exec_end.insert((job, node.0), at);
                }
                _ => {}
            }
        }
    }
}

/// A reuse claim only happens when the same configuration was left on
/// that RU by a previous load (demand or completed speculative) with
/// no intervening overwrite — and every placement, skip and stall
/// belongs to the current graph.
struct ReuseResidency;

impl Checker for ReuseResidency {
    fn name(&self) -> &'static str {
        "reuse-residency"
    }
    fn description(&self) -> &'static str {
        "reuse claims match residents; placements belong to the current graph"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let mut resident: HashMap<u16, ConfigId> = HashMap::new();
        let mut current_graph: Option<u32> = None;
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::GraphStart { job, .. } | TraceEvent::GraphResume { job, .. } => {
                    current_graph = Some(job)
                }
                TraceEvent::GraphEnd { .. } | TraceEvent::Preempt { .. } => current_graph = None,
                TraceEvent::LoadStart {
                    job, node, ru, at, ..
                } => {
                    out.probe(current_graph == Some(job), || {
                        format!(
                            "load for job {job} node {node} at {at}: job is not current \
                             (no cross-graph prefetch)"
                        )
                    });
                    // Eviction: the previous resident is gone.
                    resident.remove(&ru.0);
                }
                TraceEvent::LoadEnd { config, ru, .. } => {
                    resident.insert(ru.0, config);
                }
                TraceEvent::Reuse {
                    job,
                    config,
                    ru,
                    at,
                    ..
                } => {
                    out.probe(current_graph == Some(job), || {
                        format!("reuse for job {job} at {at}: job is not current")
                    });
                    out.probe(resident.get(&ru.0) == Some(&config), || {
                        format!(
                            "reuse of {config} on {ru} at {at} but resident is {:?}",
                            resident.get(&ru.0)
                        )
                    });
                }
                TraceEvent::ExecStart {
                    job,
                    config,
                    ru,
                    at,
                    ..
                } => {
                    out.probe(current_graph == Some(job), || {
                        format!("exec start for job {job} at {at}: job is not current")
                    });
                    out.probe(resident.get(&ru.0) == Some(&config), || {
                        format!(
                            "exec of {config} on {ru} at {at} but resident is {:?}",
                            resident.get(&ru.0)
                        )
                    });
                }
                TraceEvent::Skip { at, .. } => {
                    out.probe(current_graph.is_some(), || {
                        format!("skip at {at} outside any active graph")
                    });
                }
                TraceEvent::Stall { at, .. } => {
                    out.probe(current_graph.is_some(), || {
                        format!("stall at {at} outside any active graph")
                    });
                }
                TraceEvent::PrefetchStart { at, ru, .. } => {
                    out.probe(current_graph.is_some(), || {
                        format!(
                            "speculative load at {at} outside any active graph (the \
                             planner only runs while a graph is current)"
                        )
                    });
                    resident.remove(&ru.0);
                }
                TraceEvent::PrefetchEnd { config, ru, .. } => {
                    resident.insert(ru.0, config);
                }
                TraceEvent::PrefetchCancel { ru, .. } => {
                    resident.remove(&ru.0);
                }
                TraceEvent::FaultInject {
                    kind: FaultKind::Upset,
                    ru,
                    ..
                } => {
                    // The upset resident no longer counts as reusable;
                    // only a full rewrite re-establishes residency.
                    resident.remove(&ru.0);
                }
                TraceEvent::RuQuarantine { ru, .. } => {
                    resident.remove(&ru.0);
                }
                _ => {}
            }
        }
    }
}

/// The reuse-distance guard (the Fig. 3 hazard): a speculative load
/// never evicts a resident configuration whose next request comes
/// strictly before the fetched configuration's — checked against the
/// *entire* remaining request stream (a superset of any lookahead
/// window the engine could have used, so an engine guard violation can
/// never hide behind limited visibility).
struct PrefetchGuard;

impl Checker for PrefetchGuard {
    fn name(&self) -> &'static str {
        "prefetch-guard"
    }
    fn description(&self) -> &'static str {
        "speculative loads never evict a resident with a strictly nearer next use"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let jobs = cx.jobs;
        // Priority lanes, preemptions and fault-recovery re-queues
        // reorder the request stream dynamically; the linear
        // arrival-order model below would produce false positives, so
        // the guard only audits FIFO fault-free runs (the engine-side
        // slack guard covers the QoS regime).
        if qos_active(cx) || faults_active(cx) {
            return;
        }
        let expected_order = activation_order(jobs);
        let mut resident: HashMap<u16, ConfigId> = HashMap::new();
        // Per-job count of placements (loads + reuses) — placements
        // follow the design-time reconfiguration sequence, so this is
        // the cursor into the job's configuration sequence.
        let mut placements: HashMap<u32, usize> = HashMap::new();
        // Configuration sequences, derived lazily: only traces with
        // speculative loads pay for the design-time recomputation.
        let mut cfg_seqs: Option<Vec<Vec<ConfigId>>> = None;
        let mut started = 0usize;
        let mut current_graph: Option<u32> = None;
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::GraphStart { job, .. } => {
                    started += 1;
                    current_graph = Some(job);
                }
                TraceEvent::GraphEnd { .. } => current_graph = None,
                TraceEvent::LoadStart { ru, .. } => {
                    resident.remove(&ru.0);
                }
                TraceEvent::LoadEnd {
                    job, config, ru, ..
                } => {
                    resident.insert(ru.0, config);
                    *placements.entry(job).or_default() += 1;
                }
                TraceEvent::Reuse { job, .. } => {
                    *placements.entry(job).or_default() += 1;
                }
                TraceEvent::PrefetchStart { config, ru, at } => {
                    let evicted = resident.remove(&ru.0);
                    let seqs = cfg_seqs.get_or_insert_with(|| config_sequences(jobs));
                    // Walk the remaining request stream (current
                    // graph's unplaced tail, then every not-yet-started
                    // job in activation order) segment by segment
                    // without materialising it, early-exiting once both
                    // queried configurations are located — on real
                    // traces the nearest requests sit in the first
                    // segment or two, so this is O(1)-ish per
                    // speculative load instead of O(stream).
                    let mut fetched_next: Option<usize> = None;
                    let mut victim_next: Option<usize> = None;
                    let cur_tail = current_graph.and_then(|cur| {
                        let seq = seqs.get(cur as usize)?;
                        let done = placements.get(&cur).copied().unwrap_or(0);
                        Some(&seq[done.min(seq.len())..])
                    });
                    let rest = expected_order
                        .iter()
                        .skip(started)
                        .map(|&j| seqs[j as usize].as_slice());
                    let mut base = 0usize;
                    for seg in cur_tail.into_iter().chain(rest) {
                        for (k, &c) in seg.iter().enumerate() {
                            if fetched_next.is_none() && c == config {
                                fetched_next = Some(base + k);
                            }
                            if victim_next.is_none() && evicted == Some(c) {
                                victim_next = Some(base + k);
                            }
                        }
                        base += seg.len();
                        if fetched_next.is_some() && (evicted.is_none() || victim_next.is_some()) {
                            break;
                        }
                    }
                    out.probe(fetched_next.is_some(), || {
                        format!(
                            "speculative load of {config} at {at}: the configuration is \
                             never requested again"
                        )
                    });
                    if let (Some(victim), Some(fetched_next)) = (evicted, fetched_next) {
                        out.probe(victim_next.is_none_or(|vn| vn > fetched_next), || {
                            format!(
                                "prefetch guard violated at {at}: speculative load of \
                                 {config} (next request at stream offset {fetched_next}) \
                                 evicted {victim} whose next request comes at offset \
                                 {victim_next:?} — strictly nearer"
                            )
                        });
                    }
                }
                TraceEvent::PrefetchEnd { config, ru, .. } => {
                    resident.insert(ru.0, config);
                }
                TraceEvent::PrefetchCancel { ru, .. } => {
                    resident.remove(&ru.0);
                }
                _ => {}
            }
        }
    }
}

/// Event counters in [`RunStats`](crate::stats::RunStats) match the
/// trace: loads, reuses, execs, skips, stalls and the prefetch
/// issue/complete/cancel/hit/waste ledger.
struct CounterEquality;

impl Checker for CounterEquality {
    fn name(&self) -> &'static str {
        "counter-equality"
    }
    fn description(&self) -> &'static str {
        "RunStats event counters equal the trace tallies"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let Some(s) = cx.stats else { return };
        let c = cx.trace.counts();
        out.probe(s.loads == c.loads, || {
            format!("stats.loads {} != trace {}", s.loads, c.loads)
        });
        out.probe(s.reuses == c.reuses, || {
            format!("stats.reuses {} != trace {}", s.reuses, c.reuses)
        });
        out.probe(s.executed == c.executed, || {
            format!("stats.executed {} != trace {}", s.executed, c.executed)
        });
        out.probe(s.skips == c.skips, || {
            format!("stats.skips {} != trace {}", s.skips, c.skips)
        });
        out.probe(s.stalls == c.stalls, || {
            format!("stats.stalls {} != trace {}", s.stalls, c.stalls)
        });
        let pf = s.prefetch;
        out.probe(
            (pf.issued, pf.completed, pf.cancelled)
                == (
                    c.prefetch_issued,
                    c.prefetch_completed,
                    c.prefetch_cancelled,
                ),
            || {
                format!(
                    "stats.prefetch issued/completed/cancelled {:?} != trace {:?}",
                    (pf.issued, pf.completed, pf.cancelled),
                    (
                        c.prefetch_issued,
                        c.prefetch_completed,
                        c.prefetch_cancelled
                    )
                )
            },
        );
        out.probe(
            (pf.hits, pf.wasted) == (c.prefetch_hits, c.prefetch_wasted),
            || {
                format!(
                    "stats.prefetch hits/wasted {:?} != trace {:?}",
                    (pf.hits, pf.wasted),
                    (c.prefetch_hits, c.prefetch_wasted)
                )
            },
        );
    }
}

/// Traffic totals, port busy time and makespan in
/// [`RunStats`](crate::stats::RunStats) match the trace.
struct TrafficEquality;

impl Checker for TrafficEquality {
    fn name(&self) -> &'static str {
        "traffic-equality"
    }
    fn description(&self) -> &'static str {
        "RunStats traffic, port busy time and makespan equal the trace"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let Some(s) = cx.stats else { return };
        let latency = cx.latency;
        // Port write time actually spent (vs `port_busy_time`).
        let mut port_busy_total = rtr_sim::SimDuration::ZERO;
        // In-flight speculative load: `(ru, current write-window start)`
        // — a backoff retry moves the window.
        let mut spec: Option<(u16, SimTime)> = None;
        // Extra bus transfers the fault path performs: every demand
        // retry rewrites the full bitstream (traffic.loads), and a
        // corrupt speculative completion moved the bits even though no
        // PrefetchEnd was recorded (traffic.prefetch_loads).
        let mut demand_retries = 0u64;
        let mut spec_corrupts = 0u64;
        let mut last_graph_end: Option<SimTime> = None;
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::LoadEnd { .. } => port_busy_total += latency,
                TraceEvent::PrefetchStart { ru, at, .. } => spec = Some((ru.0, at)),
                TraceEvent::PrefetchEnd { at, .. } | TraceEvent::PrefetchCancel { at, .. } => {
                    if let Some((_, window)) = spec.take() {
                        port_busy_total += at.saturating_since(window);
                    }
                }
                TraceEvent::FaultInject {
                    kind: FaultKind::TransientLoad,
                    at,
                    ..
                } => {
                    // A corrupt completion held the port for a full
                    // write on either lane.
                    port_busy_total += latency;
                    if let Some((_, window)) = spec.as_mut() {
                        spec_corrupts += 1;
                        // The write is accounted; only time after the
                        // corrupt completion charges the next window.
                        *window = at;
                    }
                }
                TraceEvent::FaultRetry { until, .. } => match spec.as_mut() {
                    // The rewrite occupies `[until - latency, until]`.
                    Some((_, window)) => *window = until - latency,
                    None => demand_retries += 1,
                },
                TraceEvent::GraphEnd { at, .. } => last_graph_end = Some(at),
                _ => {}
            }
        }
        let c = cx.trace.counts();
        out.probe(
            s.traffic.loads == c.loads + demand_retries
                && s.traffic.reuses == c.reuses
                && s.traffic.prefetch_loads == c.prefetch_completed + spec_corrupts,
            || {
                format!(
                    "stats.traffic load/reuse/prefetch counters {:?} != trace {:?} \
                     (incl. {demand_retries} demand retries, {spec_corrupts} corrupt \
                     speculative completions)",
                    (s.traffic.loads, s.traffic.reuses, s.traffic.prefetch_loads),
                    (c.loads, c.reuses, c.prefetch_completed)
                )
            },
        );
        out.probe(s.port_busy_time == port_busy_total, || {
            format!(
                "stats.port_busy_time {} != trace total {port_busy_total}",
                s.port_busy_time
            )
        });
        if let Some(last_end) = last_graph_end {
            out.probe(s.makespan == last_end.since(SimTime::ZERO), || {
                format!(
                    "stats.makespan {} != last graph completion {last_end} (no \
                     trailing event may extend the makespan)",
                    s.makespan
                )
            });
        }
    }
}

/// The closed prefetch ledger: every issued speculative load completes
/// or is cancelled, attribution never exceeds completions, and only
/// completed speculative loads move bitstreams.
struct PrefetchAccounting;

impl Checker for PrefetchAccounting {
    fn name(&self) -> &'static str {
        "prefetch-accounting"
    }
    fn description(&self) -> &'static str {
        "issued = completed + cancelled; hits + wasted never exceed completions"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let c = cx.trace.counts();
        out.probe(
            c.prefetch_issued == c.prefetch_completed + c.prefetch_cancelled,
            || {
                format!(
                    "trace prefetch ledger is open: issued {} != completed {} + cancelled {}",
                    c.prefetch_issued, c.prefetch_completed, c.prefetch_cancelled
                )
            },
        );
        out.probe(
            c.prefetch_hits + c.prefetch_wasted <= c.prefetch_completed,
            || {
                format!(
                    "trace prefetch attribution exceeds completions: hits {} + wasted {} > \
                     completed {}",
                    c.prefetch_hits, c.prefetch_wasted, c.prefetch_completed
                )
            },
        );
        if let Some(s) = cx.stats {
            out.probe(s.prefetch.balanced(), || {
                format!("stats prefetch ledger is open: {:?}", s.prefetch)
            });
            // Corrupt speculative completions moved a bitstream without
            // a PrefetchEnd; count them from the trace.
            let mut spec_inflight = false;
            let mut spec_corrupts = 0u64;
            for ev in cx.trace.iter() {
                match *ev {
                    TraceEvent::PrefetchStart { .. } => spec_inflight = true,
                    TraceEvent::PrefetchEnd { .. } | TraceEvent::PrefetchCancel { .. } => {
                        spec_inflight = false
                    }
                    TraceEvent::FaultInject {
                        kind: FaultKind::TransientLoad,
                        ..
                    } if spec_inflight => spec_corrupts += 1,
                    _ => {}
                }
            }
            out.probe(
                s.traffic.prefetch_loads == s.prefetch.completed + spec_corrupts,
                || {
                    format!(
                        "only completed (or corrupt-completed) speculative loads move \
                         bitstreams: traffic.prefetch_loads {} != prefetch.completed {} \
                         + corrupt completions {spec_corrupts}",
                        s.traffic.prefetch_loads, s.prefetch.completed
                    )
                },
            );
        }
    }
}

/// With prefetch depth 0, speculation must be invisible: no
/// speculative trace events and zeroed prefetch counters (the golden
/// figure tests pin the actual numbers bit for bit).
struct PrefetchOffInvisible;

impl Checker for PrefetchOffInvisible {
    fn name(&self) -> &'static str {
        "prefetch-off-invisible"
    }
    fn description(&self) -> &'static str {
        "depth 0 records no speculative events and zeroed prefetch counters"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        if cx.prefetch_depth != Some(0) {
            return;
        }
        let speculative = cx
            .trace
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::PrefetchStart { .. }
                        | TraceEvent::PrefetchEnd { .. }
                        | TraceEvent::PrefetchCancel { .. }
                )
            })
            .count();
        out.probe(speculative == 0, || {
            format!("prefetch is off but the trace records {speculative} speculative events")
        });
        if let Some(s) = cx.stats {
            out.probe(s.prefetch == Default::default(), || {
                format!("prefetch is off but stats.prefetch is {:?}", s.prefetch)
            });
            out.probe(s.traffic.prefetch_loads == 0, || {
                format!(
                    "prefetch is off but stats.traffic.prefetch_loads is {}",
                    s.traffic.prefetch_loads
                )
            });
        }
    }
}

/// Preemption never loses work permanently: by each graph's
/// completion every one of its nodes has finished exactly once, and
/// every revocation (kill or checkpoint) was paid for with exactly one
/// extra execution start.
struct NoLostWork;

impl Checker for NoLostWork {
    fn name(&self) -> &'static str {
        "no-lost-work"
    }
    fn description(&self) -> &'static str {
        "every node of a completed graph finished exactly once; revocations replayed"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let jobs = cx.jobs;
        let mut starts: HashMap<(u32, u32), u64> = HashMap::new();
        let mut ends: HashMap<(u32, u32), u64> = HashMap::new();
        let mut revoked: HashMap<(u32, u32), u64> = HashMap::new();
        // In-flight execution per RU, so a hard fault's implicit kill
        // is booked as a revocation (no NodeKilled event is emitted —
        // the FaultInject carries the consequence).
        let mut inflight: HashMap<u16, (u32, u32)> = HashMap::new();
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::ExecStart { job, node, ru, .. } => {
                    *starts.entry((job, node.0)).or_default() += 1;
                    inflight.insert(ru.0, (job, node.0));
                }
                TraceEvent::ExecEnd { job, node, ru, .. } => {
                    *ends.entry((job, node.0)).or_default() += 1;
                    inflight.remove(&ru.0);
                }
                TraceEvent::NodeKilled { job, node, ru, .. }
                | TraceEvent::NodeCheckpointed { job, node, ru, .. } => {
                    *revoked.entry((job, node.0)).or_default() += 1;
                    inflight.remove(&ru.0);
                }
                TraceEvent::FaultInject {
                    kind: FaultKind::RuHard,
                    ru,
                    ..
                } => {
                    if let Some(key) = inflight.remove(&ru.0) {
                        *revoked.entry(key).or_default() += 1;
                    }
                }
                TraceEvent::GraphEnd { job, at } => {
                    let Some(spec) = jobs.get(job as usize) else {
                        out.fail(format!("graph end at {at} for unknown job {job}"));
                        continue;
                    };
                    for n in 0..spec.graph.len() as u32 {
                        let e = ends.get(&(job, n)).copied().unwrap_or(0);
                        out.probe(e == 1, || {
                            format!(
                                "graph {job} completed at {at} but node {n} finished \
                                 {e} times (expected exactly once)"
                            )
                        });
                        let st = starts.get(&(job, n)).copied().unwrap_or(0);
                        let rv = revoked.get(&(job, n)).copied().unwrap_or(0);
                        out.probe(st == 1 + rv, || {
                            format!(
                                "graph {job} node {n}: {st} execution starts for {rv} \
                                 revocations (expected {})",
                                1 + rv
                            )
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

/// Preemptions respect the priority lattice: a preemptor's lane
/// priority is strictly above its victim's, the suspended stack is
/// LIFO with priorities increasing toward the top, and every
/// suspension is resumed before the end of the trace.
struct PreemptionOrder;

impl Checker for PreemptionOrder {
    fn name(&self) -> &'static str {
        "preemption-order"
    }
    fn description(&self) -> &'static str {
        "preemptor priority strictly above victim; LIFO suspend/resume, all resumed"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let jobs = cx.jobs;
        let prio = |j: u32| -> Option<u8> { jobs.get(j as usize).map(|spec| spec.qos.priority) };
        // The suspended stack as the trace implies it: victims pushed
        // at Preempt, popped at GraphResume.
        let mut stack: Vec<u32> = Vec::new();
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::Preempt {
                    victim,
                    preemptor,
                    at,
                } => {
                    match (prio(victim), prio(preemptor)) {
                        (Some(v), Some(p)) => out.probe(p > v, || {
                            format!(
                                "preemption at {at}: preemptor {preemptor} (priority {p}) \
                                 does not strictly out-prioritise victim {victim} \
                                 (priority {v})"
                            )
                        }),
                        _ => out.fail(format!(
                            "preemption at {at} names unknown jobs \
                             ({victim} by {preemptor})"
                        )),
                    }
                    if let (Some(&below), Some(v)) = (stack.last(), prio(victim)) {
                        out.probe(prio(below).is_some_and(|b| v >= b), || {
                            format!(
                                "suspended stack priorities must increase toward the top: \
                                 victim {victim} (priority {v}) pushed above job {below} \
                                 (priority {:?})",
                                prio(below)
                            )
                        });
                    }
                    stack.push(victim);
                }
                TraceEvent::GraphResume { job, at } => match stack.pop() {
                    Some(top) => out.probe(top == job, || {
                        format!(
                            "resume at {at} is not LIFO: graph {job} resumed while \
                             {top} is on top of the suspended stack"
                        )
                    }),
                    None => out.fail(format!(
                        "graph {job} resumed at {at} but nothing is suspended"
                    )),
                },
                _ => {}
            }
        }
        out.probe(stack.is_empty(), || {
            format!("graphs {stack:?} were suspended but never resumed")
        });
    }
}

/// The QoS ledger closes: preemption/checkpoint/replay counters in
/// [`RunStats`](crate::stats::RunStats) match the trace, deadline
/// misses and tardiness re-derive from completions against the job
/// specs, and the per-class rows sum to the run totals.
struct QosAccounting;

impl Checker for QosAccounting {
    fn name(&self) -> &'static str {
        "qos-accounting"
    }
    fn description(&self) -> &'static str {
        "stats QoS counters equal the trace; per-class rows sum to totals"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let Some(s) = cx.stats else { return };
        let q = &s.qos;
        let c = cx.trace.counts();
        out.probe(q.preemptions == c.preemptions, || {
            format!(
                "stats.qos.preemptions {} != trace {}",
                q.preemptions, c.preemptions
            )
        });
        out.probe(q.checkpoints == c.checkpoints, || {
            format!(
                "stats.qos.checkpoints {} != trace {}",
                q.checkpoints, c.checkpoints
            )
        });
        out.probe(q.replayed_nodes == c.killed_nodes, || {
            format!(
                "stats.qos.replayed_nodes {} != trace killed {}",
                q.replayed_nodes, c.killed_nodes
            )
        });
        out.probe(c.resumes == c.preemptions, || {
            format!(
                "trace has {} preemptions but {} resumes (every suspension must resume)",
                c.preemptions, c.resumes
            )
        });
        // Re-derive the deadline ledger from completions vs specs.
        let mut misses = 0u64;
        let mut tardiness = rtr_sim::SimDuration::ZERO;
        let mut completed = 0u64;
        for ev in cx.trace.iter() {
            if let TraceEvent::GraphEnd { job, at } = *ev {
                completed += 1;
                if let Some(d) = cx.jobs.get(job as usize).and_then(|spec| spec.qos.deadline) {
                    if at > d {
                        misses += 1;
                        tardiness += at.since(d);
                    }
                }
            }
        }
        out.probe(q.deadline_misses == misses, || {
            format!(
                "stats.qos.deadline_misses {} != {misses} re-derived from the trace",
                q.deadline_misses
            )
        });
        out.probe(q.tardiness_total == tardiness, || {
            format!(
                "stats.qos.tardiness_total {} != {tardiness} re-derived from the trace",
                q.tardiness_total
            )
        });
        out.probe(q.balanced(), || {
            format!("per-class miss/tardiness rows do not sum to the run totals: {q:?}")
        });
        let class_jobs: u64 = q.class_sojourns.iter().map(|r| r.jobs).sum();
        out.probe(class_jobs == completed, || {
            format!(
                "per-class job counts sum to {class_jobs}, but the trace completed \
                 {completed} graphs"
            )
        });
    }
}

/// The retry/backoff protocol: every corrupt load completion is
/// resolved at the same instant by a retry or a give-up, attempts
/// count up by one and never exceed the plan's budget, retried writes
/// honour the exponential-backoff schedule, and every give-up is
/// followed by its unit's quarantine.
struct FaultRetryBounded;

impl Checker for FaultRetryBounded {
    fn name(&self) -> &'static str {
        "fault-retry-bounded"
    }
    fn description(&self) -> &'static str {
        "corrupt loads retry with bounded exponential backoff, then quarantine"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let latency = cx.latency;
        // Unresolved corrupt completion per RU: `(config, instant)`.
        let mut open: HashMap<u16, (Option<ConfigId>, SimTime)> = HashMap::new();
        // Attempts burned on the RU's in-flight load so far.
        let mut attempts: HashMap<u16, u8> = HashMap::new();
        // A give-up whose RuQuarantine has not arrived yet.
        let mut due_quarantine: Option<(u16, SimTime)> = None;
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::FaultInject {
                    kind: FaultKind::TransientLoad,
                    ru,
                    config,
                    at,
                } => {
                    out.probe(!open.contains_key(&ru.0), || {
                        format!(
                            "corrupt completion on {ru} at {at} while an earlier one \
                             is still unresolved"
                        )
                    });
                    open.insert(ru.0, (config, at));
                }
                TraceEvent::FaultRetry {
                    ru,
                    config,
                    attempt,
                    until,
                    at,
                } => {
                    match open.remove(&ru.0) {
                        Some((c, t)) => out.probe(c == Some(config) && t == at, || {
                            format!(
                                "retry of {config} on {ru} at {at} does not match the \
                                 corrupt completion it resolves ({c:?} at {t})"
                            )
                        }),
                        None => out.fail(format!(
                            "retry of {config} on {ru} at {at} without a corrupt completion"
                        )),
                    }
                    let prev = attempts.get(&ru.0).copied().unwrap_or(0);
                    out.probe(attempt == prev + 1, || {
                        format!(
                            "retry attempt {attempt} on {ru} at {at} does not follow \
                             attempt {prev}"
                        )
                    });
                    if let Some(plan) = cx.fault_plan {
                        out.probe(attempt <= plan.max_retries, || {
                            format!(
                                "retry attempt {attempt} on {ru} at {at} exceeds the \
                                 plan's budget of {}",
                                plan.max_retries
                            )
                        });
                    }
                    if (1..=32).contains(&attempt) {
                        let expected = latency * ((1u64 << (attempt - 1)) + 1);
                        out.probe(until.since(at) == expected, || {
                            format!(
                                "retry attempt {attempt} on {ru} at {at} completes at \
                                 {until}; the backoff schedule requires {expected} \
                                 (latency × (2^(k−1) + 1))"
                            )
                        });
                    }
                    attempts.insert(ru.0, attempt);
                }
                TraceEvent::FaultGiveUp {
                    ru,
                    config,
                    attempts: total,
                    at,
                } => {
                    match open.remove(&ru.0) {
                        Some((c, t)) => out.probe(c == Some(config) && t == at, || {
                            format!(
                                "give-up of {config} on {ru} at {at} does not match the \
                                 corrupt completion it resolves ({c:?} at {t})"
                            )
                        }),
                        None => out.fail(format!(
                            "give-up of {config} on {ru} at {at} without a corrupt completion"
                        )),
                    }
                    let prev = attempts.remove(&ru.0).unwrap_or(0);
                    out.probe(total == prev + 1, || {
                        format!(
                            "give-up on {ru} at {at} reports {total} attempts after \
                             attempt {prev}"
                        )
                    });
                    if let Some(plan) = cx.fault_plan {
                        out.probe(total == plan.max_retries + 1, || {
                            format!(
                                "give-up on {ru} at {at} after {total} attempts; the \
                                 plan's budget allows exactly {}",
                                plan.max_retries + 1
                            )
                        });
                    }
                    out.probe(due_quarantine.is_none(), || {
                        format!(
                            "give-up on {ru} at {at} while {due_quarantine:?} still \
                             awaits its quarantine"
                        )
                    });
                    due_quarantine = Some((ru.0, at));
                }
                TraceEvent::RuQuarantine { ru, at } if due_quarantine == Some((ru.0, at)) => {
                    due_quarantine = None;
                }
                TraceEvent::LoadEnd { ru, at, .. } | TraceEvent::PrefetchEnd { ru, at, .. } => {
                    out.probe(!open.contains_key(&ru.0), || {
                        format!(
                            "clean completion on {ru} at {at} while a corrupt one is \
                             unresolved"
                        )
                    });
                    attempts.remove(&ru.0);
                }
                TraceEvent::PrefetchCancel { ru, .. } => {
                    // A cancelled speculative retry abandons the load.
                    attempts.remove(&ru.0);
                }
                _ => {}
            }
        }
        out.probe(open.is_empty(), || {
            format!("corrupt completions never resolved: {open:?}")
        });
        out.probe(due_quarantine.is_none(), || {
            format!("give-up {due_quarantine:?} was never followed by its quarantine")
        });
    }
}

/// Quarantine isolation: no load, reuse, execution, retry or further
/// fault ever targets a quarantined RU, quarantines and heals pair up,
/// and a unit only heals out of quarantine.
struct QuarantineIsolation;

impl Checker for QuarantineIsolation {
    fn name(&self) -> &'static str {
        "quarantine-isolation"
    }
    fn description(&self) -> &'static str {
        "no event targets a quarantined RU; quarantines and heals pair up"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let mut quarantined: HashSet<u16> = HashSet::new();
        let mut quarantines = 0u64;
        let mut heals = 0u64;
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::RuQuarantine { ru, at } => {
                    out.probe(quarantined.insert(ru.0), || {
                        format!("{ru} quarantined at {at} but is already out of the pool")
                    });
                    quarantines += 1;
                }
                TraceEvent::RuHeal { ru, at } => {
                    out.probe(quarantined.remove(&ru.0), || {
                        format!("{ru} healed at {at} but was not quarantined")
                    });
                    heals += 1;
                }
                TraceEvent::LoadStart { ru, at, .. }
                | TraceEvent::LoadEnd { ru, at, .. }
                | TraceEvent::Reuse { ru, at, .. }
                | TraceEvent::ExecStart { ru, at, .. }
                | TraceEvent::ExecEnd { ru, at, .. }
                | TraceEvent::PrefetchStart { ru, at, .. }
                | TraceEvent::PrefetchEnd { ru, at, .. }
                | TraceEvent::PrefetchCancel { ru, at, .. }
                | TraceEvent::FaultInject { ru, at, .. }
                | TraceEvent::FaultRetry { ru, at, .. }
                | TraceEvent::FaultGiveUp { ru, at, .. }
                | TraceEvent::NodeKilled { ru, at, .. }
                | TraceEvent::NodeCheckpointed { ru, at, .. } => {
                    out.probe(!quarantined.contains(&ru.0), || {
                        format!("{} targets quarantined {ru} at {at}", ev.kind_name())
                    });
                }
                _ => {}
            }
        }
        out.probe(heals <= quarantines, || {
            format!("{heals} heals recorded for only {quarantines} quarantines")
        });
    }
}

/// An upset (corrupt) resident never satisfies a reuse claim or backs
/// an execution start; only a full rewrite of the unit (or its
/// quarantine) clears the corruption.
struct CorruptNeverReused;

impl Checker for CorruptNeverReused {
    fn name(&self) -> &'static str {
        "corrupt-never-reused"
    }
    fn description(&self) -> &'static str {
        "upset residents are never reused or executed before a rewrite"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let mut corrupt: HashSet<u16> = HashSet::new();
        let mut upsets = 0u64;
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::FaultInject {
                    kind: FaultKind::Upset,
                    ru,
                    at,
                    ..
                } => {
                    out.probe(corrupt.insert(ru.0), || {
                        format!("upset at {at} hit {ru}, whose resident is already corrupt")
                    });
                    upsets += 1;
                }
                // A rewrite (either lane) repairs the unit; quarantine
                // discards the resident outright.
                TraceEvent::LoadStart { ru, .. }
                | TraceEvent::PrefetchStart { ru, .. }
                | TraceEvent::RuQuarantine { ru, .. } => {
                    corrupt.remove(&ru.0);
                }
                TraceEvent::Reuse { ru, at, .. } => {
                    out.probe(!corrupt.contains(&ru.0), || {
                        format!("reuse claim on {ru} at {at} of an upset (corrupt) resident")
                    });
                }
                TraceEvent::ExecStart { ru, at, .. } => {
                    out.probe(!corrupt.contains(&ru.0), || {
                        format!("execution start on {ru} at {at} over an upset resident")
                    });
                }
                _ => {}
            }
        }
        out.probe(corrupt.len() as u64 <= upsets, || {
            format!(
                "{} residents marked corrupt by only {upsets} upsets",
                corrupt.len()
            )
        });
    }
}

/// The fault ledger closes: [`RunStats`](crate::stats::RunStats) fault
/// counters match the trace tallies, the per-class injections sum to
/// the total, every give-up and hard fault quarantined a unit, and the
/// degraded-pool time and lost work re-derive from the trace.
struct FaultAccounting;

impl Checker for FaultAccounting {
    fn name(&self) -> &'static str {
        "fault-accounting"
    }
    fn description(&self) -> &'static str {
        "stats fault counters equal the trace; degraded time and lost work re-derive"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let c = cx.trace.counts();
        out.probe(
            c.fault_injected == c.fault_transients + c.fault_upsets + c.fault_ru,
            || {
                format!(
                    "per-class injections {} + {} + {} do not sum to the total {}",
                    c.fault_transients, c.fault_upsets, c.fault_ru, c.fault_injected
                )
            },
        );
        out.probe(c.ru_quarantines == c.fault_giveups + c.fault_ru, || {
            format!(
                "{} quarantines for {} give-ups + {} hard faults",
                c.ru_quarantines, c.fault_giveups, c.fault_ru
            )
        });
        out.probe(c.ru_heals <= c.ru_quarantines, || {
            format!(
                "{} heals recorded for only {} quarantines",
                c.ru_heals, c.ru_quarantines
            )
        });
        // Re-derive the degraded-pool clock and the lost work.
        let mut degraded = rtr_sim::SimDuration::ZERO;
        let mut since: Option<SimTime> = None;
        let mut depth = 0u32;
        let mut lost = rtr_sim::SimDuration::ZERO;
        let mut exec_started: HashMap<u16, SimTime> = HashMap::new();
        for ev in cx.trace.iter() {
            match *ev {
                TraceEvent::RuQuarantine { at, .. } => {
                    depth += 1;
                    if depth == 1 {
                        since = Some(at);
                    }
                }
                TraceEvent::RuHeal { at, .. } => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        if let Some(s) = since.take() {
                            degraded += at.since(s);
                        }
                    }
                }
                TraceEvent::ExecStart { ru, at, .. } => {
                    exec_started.insert(ru.0, at);
                }
                TraceEvent::ExecEnd { ru, .. }
                | TraceEvent::NodeKilled { ru, .. }
                | TraceEvent::NodeCheckpointed { ru, .. } => {
                    exec_started.remove(&ru.0);
                }
                TraceEvent::FaultInject {
                    kind: FaultKind::RuHard,
                    ru,
                    at,
                    ..
                } => {
                    if let Some(s) = exec_started.remove(&ru.0) {
                        lost += at.since(s);
                    }
                }
                _ => {}
            }
        }
        let Some(s) = cx.stats else { return };
        // A stretch still open at end of trace closes at the makespan.
        if let Some(open) = since {
            degraded += (SimTime::ZERO + s.makespan).saturating_since(open);
        }
        let f = &s.faults;
        out.probe(f.injected == c.fault_injected, || {
            format!(
                "stats.faults.injected {} != trace {}",
                f.injected, c.fault_injected
            )
        });
        out.probe(f.retries == c.fault_retries, || {
            format!(
                "stats.faults.retries {} != trace {}",
                f.retries, c.fault_retries
            )
        });
        out.probe(f.repairs == c.fault_repairs, || {
            format!(
                "stats.faults.repairs {} != trace {}",
                f.repairs, c.fault_repairs
            )
        });
        out.probe(f.quarantines == c.ru_quarantines, || {
            format!(
                "stats.faults.quarantines {} != trace {}",
                f.quarantines, c.ru_quarantines
            )
        });
        out.probe(f.heals == c.ru_heals, || {
            format!("stats.faults.heals {} != trace {}", f.heals, c.ru_heals)
        });
        out.probe(f.degraded_time == degraded, || {
            format!(
                "stats.faults.degraded_time {} != {degraded} re-derived from the trace",
                f.degraded_time
            )
        });
        out.probe(f.lost_work_cycles == lost, || {
            format!(
                "stats.faults.lost_work_cycles {} != {lost} re-derived from the trace",
                f.lost_work_cycles
            )
        });
        out.probe(f.balanced(), || {
            format!("fault ledger internal identities do not hold: {f:?}")
        });
    }
}

/// The pooled-engine / determinism contract: the run is bit-exact with
/// the reference outcome — field-level pins first so a divergence
/// names the leaked counter, then full stats and the event-for-event
/// trace.
struct PooledIdentity;

impl Checker for PooledIdentity {
    fn name(&self) -> &'static str {
        "pooled-identity"
    }
    fn description(&self) -> &'static str {
        "run is bit-exact with the reference outcome (stats and trace)"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let Some(reference) = cx.reference else {
            return;
        };
        if let Some(s) = cx.stats {
            let r = &reference.stats;
            out.probe(s.traffic == r.traffic, || {
                format!(
                    "traffic/energy counters diverged from the reference run: \
                     {:?} != {:?}",
                    s.traffic, r.traffic
                )
            });
            out.probe(s.port_busy_time == r.port_busy_time, || {
                format!(
                    "controller busy-time diverged from the reference run: {} != {}",
                    s.port_busy_time, r.port_busy_time
                )
            });
            out.probe(s.prefetch == r.prefetch, || {
                format!(
                    "prefetch counters diverged from the reference run: {:?} != {:?}",
                    s.prefetch, r.prefetch
                )
            });
            out.probe(s == r, || {
                format!(
                    "RunStats diverged from the reference run: \
                     makespan {} vs {}, executed {} vs {}, reuses {} vs {}, \
                     loads {} vs {}, skips {} vs {}, stalls {} vs {}",
                    s.makespan,
                    r.makespan,
                    s.executed,
                    r.executed,
                    s.reuses,
                    r.reuses,
                    s.loads,
                    r.loads,
                    s.skips,
                    r.skips,
                    s.stalls,
                    r.stalls
                )
            });
        }
        let a = &cx.trace.events;
        let b = &reference.trace.events;
        out.probe(a == b, || {
            match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
                Some(i) => format!(
                    "trace diverged from the reference run at event {i}: {:?} != {:?}",
                    a[i], b[i]
                ),
                None => format!(
                    "trace diverged from the reference run: {} events vs {}",
                    a.len(),
                    b.len()
                ),
            }
        });
    }
}

/// Admission control never starves a tenant that stayed inside its
/// own quota: replaying the admission event stream, a submission is
/// rejected if and only if the submitting tenant itself was already at
/// quota, independent of every other tenant's behaviour.
struct TenantIsolation;

impl Checker for TenantIsolation {
    fn name(&self) -> &'static str {
        "tenant-isolation"
    }
    fn description(&self) -> &'static str {
        "a tenant over quota never starves tenants below quota"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let Some(fleet) = cx.fleet else {
            return; // single-device run: nothing to isolate
        };
        // Replay the per-tenant pending windows independently of the
        // fleet's own bookkeeping. Windows reset when the recorded
        // pending count drops back (a drain happened in between), so
        // the replay follows the recorded `pending_before` and only
        // asserts the *decision* taken on it.
        let mut last_index = None;
        for ev in fleet.admissions {
            out.probe(last_index < Some(ev.submit_index), || {
                format!(
                    "admission events out of submission order at index {}",
                    ev.submit_index
                )
            });
            last_index = Some(ev.submit_index);
            let own_quota_open = fleet.quota.is_none_or(|q| (ev.pending_before as usize) < q);
            out.probe(ev.admitted == own_quota_open, || {
                if ev.admitted {
                    format!(
                        "submission {} of tenant {} admitted although the tenant \
                         was at quota ({} pending, quota {:?})",
                        ev.submit_index, ev.tenant, ev.pending_before, fleet.quota
                    )
                } else {
                    format!(
                        "submission {} of tenant {} rejected although the tenant \
                         was below quota ({} pending, quota {:?}) — \
                         starved by another tenant",
                        ev.submit_index, ev.tenant, ev.pending_before, fleet.quota
                    )
                }
            });
        }
    }
}

/// Every recorded placement score existed at decision time: the
/// checker replays the dispatch plane's residency models from scratch
/// (same LRU rule, same capacities) and re-derives each decision's
/// per-device overlap vector. For `ReuseAffinity` it additionally
/// asserts the routing claim itself — the chosen device had the
/// maximal overlap, with ties broken toward the least queued work.
struct PlacementResidency;

impl Checker for PlacementResidency {
    fn name(&self) -> &'static str {
        "placement-residency"
    }
    fn description(&self) -> &'static str {
        "placement scores replay exactly; reuse-affinity routed to a best-overlap device"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let Some(fleet) = cx.fleet else {
            return;
        };
        let mut models: Vec<crate::fleet::ResidencyModel> = fleet
            .device_rus
            .iter()
            .map(|&rus| crate::fleet::ResidencyModel::new(rus))
            .collect();
        for d in fleet.decisions {
            if d.device >= models.len() || d.overlaps.len() != models.len() {
                out.fail(format!(
                    "decision {} malformed: device {} of {}, {} overlap entries",
                    d.submit_index,
                    d.device,
                    models.len(),
                    d.overlaps.len()
                ));
                continue;
            }
            for (i, model) in models.iter().enumerate() {
                let replayed = model.overlap(&d.cfg_seq);
                out.probe(replayed == d.overlaps[i], || {
                    format!(
                        "decision {}: recorded overlap {} on device {i}, but the \
                         replayed residency model says {replayed} — the claimed \
                         score did not exist at decision time",
                        d.submit_index, d.overlaps[i]
                    )
                });
            }
            if fleet.placement == crate::fleet::PlacementKind::ReuseAffinity {
                let best = d.overlaps.iter().copied().max().unwrap_or(0);
                out.probe(d.overlaps[d.device] == best, || {
                    format!(
                        "decision {}: reuse-affinity routed to device {} with \
                         overlap {}, but device {} offered {}",
                        d.submit_index,
                        d.device,
                        d.overlaps[d.device],
                        d.overlaps
                            .iter()
                            .enumerate()
                            .max_by_key(|&(_, &o)| o)
                            .map(|(i, _)| i)
                            .unwrap_or(0),
                        best
                    )
                });
                let min_work = d
                    .overlaps
                    .iter()
                    .zip(&d.queued_work)
                    .filter(|(&o, _)| o == best)
                    .map(|(_, &w)| w)
                    .min();
                out.probe(Some(d.queued_work[d.device]) == min_work, || {
                    format!(
                        "decision {}: reuse-affinity broke the overlap tie toward \
                         device {} with queued work {}, not the least-loaded \
                         candidate ({:?})",
                        d.submit_index, d.device, d.queued_work[d.device], min_work
                    )
                });
            }
            models[d.device].admit(&d.cfg_seq);
        }
    }
}

/// The [`FleetStats`](crate::fleet::FleetStats) roll-up is a pure
/// function of its parts: totals equal the per-device `RunStats` sums,
/// the per-tenant ledger sums to the totals and re-derives from the
/// admission event stream, and the makespan is the device maximum.
struct FleetAccounting;

impl Checker for FleetAccounting {
    fn name(&self) -> &'static str {
        "fleet-accounting"
    }
    fn description(&self) -> &'static str {
        "FleetStats equals the sum of the per-device RunStats ledgers"
    }
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput) {
        let Some(fleet) = cx.fleet else {
            return;
        };
        let s = fleet.stats;
        out.probe(s.balanced(), || {
            format!(
                "FleetStats roll-up out of balance: {} devices, totals \
                 submitted={} admitted={} rejected={} completed={} \
                 executed={} reuses={} loads={} makespan={}",
                s.devices,
                s.submitted,
                s.admitted,
                s.rejected,
                s.completed,
                s.executed,
                s.reuses,
                s.loads,
                s.makespan
            )
        });
        out.probe(s.devices == fleet.device_rus.len(), || {
            format!(
                "FleetStats reports {} devices, fleet config has {}",
                s.devices,
                fleet.device_rus.len()
            )
        });
        // Re-derive the admission ledger from the event stream.
        let mut submitted = 0u64;
        let mut admitted = 0u64;
        let mut per_tenant: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for ev in fleet.admissions {
            submitted += 1;
            let t = per_tenant.entry(ev.tenant.0).or_insert((0, 0));
            t.0 += 1;
            if ev.admitted {
                admitted += 1;
                t.1 += 1;
            }
        }
        out.probe((submitted, admitted) == (s.submitted, s.admitted), || {
            format!(
                "admission events tally {submitted} submitted / {admitted} \
                     admitted, FleetStats says {} / {}",
                s.submitted, s.admitted
            )
        });
        out.probe(s.per_tenant.len() == per_tenant.len(), || {
            format!(
                "{} tenant ledger rows, but {} tenants appear in the \
                 admission events",
                s.per_tenant.len(),
                per_tenant.len()
            )
        });
        for row in &s.per_tenant {
            let (sub, adm) = per_tenant.get(&row.tenant).copied().unwrap_or((0, 0));
            out.probe((row.submitted, row.admitted) == (sub, adm), || {
                format!(
                    "tenant {} ledger says submitted={} admitted={}, the \
                         admission events tally {sub} / {adm}",
                    row.tenant, row.submitted, row.admitted
                )
            });
        }
        // Placed jobs must cover exactly the admitted ones when
        // decisions were recorded.
        if !fleet.decisions.is_empty() || s.admitted == 0 {
            out.probe(fleet.decisions.len() as u64 == s.admitted, || {
                format!(
                    "{} placement decisions recorded for {} admitted jobs",
                    fleet.decisions.len(),
                    s.admitted
                )
            });
            let mut per_device = vec![0u64; s.devices];
            for d in fleet.decisions {
                if let Some(n) = per_device.get_mut(d.device) {
                    *n += 1;
                }
            }
            for (i, dev) in s.per_device.iter().enumerate() {
                out.probe(dev.graph_completions.len() as u64 == per_device[i], || {
                    format!(
                        "device {i} completed {} graphs but was routed {}",
                        dev.graph_completions.len(),
                        per_device[i]
                    )
                });
            }
        }
    }
}
