//! Warm-start incremental re-simulation.
//!
//! A parameter sweep re-runs near-identical job batches: adjacent grid
//! cells differ in a single knob, and replication loops differ in
//! nothing at all. This module lets a pooled [`Engine`](crate::Engine)
//! skip the shared prefix of such runs instead of re-simulating from
//! t = 0.
//!
//! **Recording.** While a pooled run executes (and the policy opted in
//! via [`ReplacementPolicy::warm_key`]), the engine shadows every trace
//! event into a compact decision log — independent of
//! `cfg.record_trace`, so disabled-trace sweeps still record — and, at
//! each fully quiescent graph completion (port idle, queue empty, no
//! pending reconfiguration, nothing suspended), captures a checkpoint:
//! completed-job count, clock, counter snapshot, and the unclaimed
//! residency of every RU. The next `reset`/`reset_with_config`/
//! `reset_replay` seals the log of a *completed* run as the engine's
//! reference.
//!
//! **Replay.** At the start of the next run the engine compares the new
//! batch against the reference. An identical batch under an identical
//! configuration and policy key replays the entire log (a timing
//! replication); a batch sharing a job-spec prefix restores the last
//! checkpoint that provably precedes any divergent decision and
//! re-simulates only the tail. Replay pushes the logged events into the
//! trace (when enabled) and feeds the policy the exact callback
//! sequence the original run produced, so policy state, counters,
//! residency, the `ReuseIndex` backlog and all QoS ledgers end up
//! bit-exact with a cold run — the pooled-equivalence property tests
//! and the vopr `pooled-identity` checker gate this.
//!
//! **Eligibility.** Recording is restricted to runs where every policy
//! callback pairs 1:1 with a logged event: prefetch disabled and
//! preemption off (a resumed graph re-fires `on_graph_start` from a
//! `GraphResume` record, which replay does not map). Prefix restore is
//! further restricted to the provably-prefix-stable shape — a
//! same-instant batch of default-QoS jobs under a *finite* lookahead
//! window `w` (`Lookahead::All` sees the whole tail, so any appended
//! job can change the first decision): with `k` graphs completed at the
//! checkpoint and a common spec prefix of `p` jobs, every replacement
//! decision up to the checkpoint saw only jobs `< k + w ≤ p`, which
//! both runs share. Full-log replay needs none of that shape — any
//! recorded run replays onto an identical batch.

use super::ManagerState;
use crate::config::ManagerConfig;
use crate::job::JobSpec;
use crate::policy::ReplacementPolicy;
use crate::qos::{PreemptionMode, QosClass};
use crate::trace::TraceEvent;
use rtr_hw::TrafficStats;
use rtr_sim::{SimDuration, SimTime};
use rtr_taskgraph::ConfigId;
use std::sync::Arc;

/// Scalar counter snapshot at a quiescent instant. Prefetch and
/// preemption counters are absent by construction: recording is gated
/// on both features being off, so they are provably zero.
#[derive(Debug, Clone)]
pub(crate) struct WarmCounters {
    executed: u64,
    reuses: u64,
    loads: u64,
    skips: u64,
    stalls: u64,
    traffic: TrafficStats,
    controller_loads: u64,
    controller_busy: SimDuration,
    qos_deadline_misses: u64,
    qos_tardiness: SimDuration,
}

/// A restorable quiescent instant of a recorded run.
#[derive(Debug, Clone)]
pub(crate) struct WarmCheckpoint {
    /// Graphs completed (and retired from the backlog) at this point.
    pub(crate) jobs_done: usize,
    /// Log length at this point (events `[..event_pos]` led here).
    pub(crate) event_pos: usize,
    /// The completion instant.
    pub(crate) now: SimTime,
    counters: WarmCounters,
    /// Unclaimed resident configuration per RU (`None` = empty).
    residency: Vec<Option<ConfigId>>,
}

/// A completed run's sealed decision log — the warm-start reference.
pub(crate) struct SealedRun {
    pub(crate) cfg: ManagerConfig,
    pub(crate) jobs: Vec<JobSpec>,
    pub(crate) key: String,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) checkpoints: Vec<WarmCheckpoint>,
    pub(crate) final_counters: WarmCounters,
    pub(crate) final_residency: Vec<Option<ConfigId>>,
    pub(crate) makespan_end: SimTime,
}

/// Live recording state of the run in progress (owned by
/// [`ManagerState`] so the `record` choke point can shadow events).
#[derive(Default)]
pub(crate) struct WarmRecorder {
    /// Shadow-recording is on for the current lifecycle.
    pub(crate) active: bool,
    /// The recording policy's [`ReplacementPolicy::warm_key`].
    pub(crate) key: String,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) checkpoints: Vec<WarmCheckpoint>,
}

/// Warm-start observability: cumulative hit counters plus the shape of
/// the most recent run (all zero / `false` for cold runs).
#[derive(Debug, Clone, Default)]
pub struct WarmStats {
    /// Runs that compared a fresh batch against a sealed reference.
    pub attempts: u64,
    /// Attempts replaying the entire reference log (identical batch).
    pub full_hits: u64,
    /// Attempts restoring an intermediate checkpoint (shared prefix).
    pub prefix_hits: u64,
    /// The last run started warm (full or prefix).
    pub last_was_hit: bool,
    /// Graphs the last run skipped re-simulating — the depth of the
    /// first divergent decision (0 = cold start).
    pub last_divergence_depth: usize,
    /// Logged events the last run replayed instead of re-deriving.
    pub last_replayed_events: usize,
}

/// Feeds a policy the callback a logged event originally produced.
/// Events without callbacks (arrivals, load starts, skips, stalls)
/// replay silently.
pub(crate) fn deliver_callback<P: ReplacementPolicy + ?Sized>(policy: &mut P, e: TraceEvent) {
    match e {
        TraceEvent::LoadEnd { config, ru, at, .. } => policy.on_load_complete(config, ru, at),
        TraceEvent::Reuse { config, ru, at, .. } => policy.on_reuse(config, ru, at),
        TraceEvent::ExecStart { config, at, .. } => policy.on_exec_start(config, at),
        TraceEvent::ExecEnd { config, at, .. } => policy.on_exec_end(config, at),
        TraceEvent::GraphStart { job, at } => policy.on_graph_start(job, at),
        TraceEvent::GraphEnd { job, at } => policy.on_graph_end(job, at),
        _ => {}
    }
}

/// Job-spec identity for prefix comparison: cheap pointer equality on
/// the shared design-time artifacts plus value equality on the
/// scheduling-relevant scalars.
pub(crate) fn same_spec(a: &JobSpec, b: &JobSpec) -> bool {
    Arc::ptr_eq(&a.graph, &b.graph)
        && a.arrival == b.arrival
        && a.qos == b.qos
        && a.tenant == b.tenant
        && match (&a.mobility, &b.mobility) {
            (None, None) => true,
            (Some(x), Some(y)) => Arc::ptr_eq(x, y),
            _ => false,
        }
        && match (&a.forced_delays, &b.forced_delays) {
            (None, None) => true,
            (Some(x), Some(y)) => Arc::ptr_eq(x, y),
            _ => false,
        }
}

/// The prefix-stable batch shape: every job arrives at the same instant
/// and carries the default QoS class, so activation is plain FIFO and
/// no deadline or priority can reorder anything mid-run.
pub(crate) fn batch_default(jobs: &[JobSpec]) -> bool {
    let Some(first) = jobs.first() else {
        return false;
    };
    jobs.iter()
        .all(|j| j.arrival == first.arrival && j.qos == QosClass::BEST_EFFORT)
}

/// True when `cfg` admits shadow recording: every policy callback of
/// such a run pairs 1:1 with a logged trace event. An active fault
/// plan also disqualifies a run — replaying a recorded prefix would
/// skip the fault draws made while producing it, detaching the replay
/// from the plan's deterministic schedule.
pub(crate) fn recordable_cfg(cfg: &ManagerConfig) -> bool {
    !cfg.prefetch.enabled() && cfg.preemption == PreemptionMode::Off && cfg.faults.is_off()
}

impl SealedRun {
    /// The last checkpoint safe to restore for the engine's submitted
    /// batch `jobs` under lookahead window `w` — see the module docs
    /// for the `k + w ≤ p` bound.
    pub(crate) fn pick_prefix_checkpoint(&self, jobs: &[JobSpec], w: usize) -> Option<usize> {
        if !batch_default(jobs) || !batch_default(&self.jobs) {
            return None;
        }
        let p = self
            .jobs
            .iter()
            .zip(jobs)
            .take_while(|(a, b)| same_spec(a, b))
            .count();
        // The restored run must still have at least one job left to
        // activate (jobs_done ≤ len − 1), and no replayed decision may
        // have seen a job past the shared prefix (jobs_done ≤ p − w).
        let max_done = p.saturating_sub(w).min(jobs.len().saturating_sub(1));
        if max_done == 0 {
            return None;
        }
        let idx = self
            .checkpoints
            .partition_point(|c| c.jobs_done <= max_done);
        idx.checked_sub(1)
    }
}

impl ManagerState {
    /// Snapshot of every scalar counter a warm restore must reproduce.
    pub(crate) fn warm_counters(&self) -> WarmCounters {
        WarmCounters {
            executed: self.executed,
            reuses: self.reuses,
            loads: self.loads,
            skips: self.skips,
            stalls: self.stalls,
            traffic: self.energy.stats(),
            controller_loads: self.controller.completed_loads(),
            controller_busy: self.controller.busy_time(),
            qos_deadline_misses: self.qos_deadline_misses,
            qos_tardiness: self.qos_tardiness,
        }
    }

    /// Restores a counter snapshot, including the hardware models'.
    pub(crate) fn warm_apply_counters(&mut self, c: &WarmCounters) {
        self.executed = c.executed;
        self.reuses = c.reuses;
        self.loads = c.loads;
        self.skips = c.skips;
        self.stalls = c.stalls;
        self.energy.restore_stats(c.traffic);
        self.controller
            .restore_counters(c.controller_loads, c.controller_busy);
        self.qos_deadline_misses = c.qos_deadline_misses;
        self.qos_tardiness = c.qos_tardiness;
    }

    /// Captures a checkpoint if the engine is fully quiescent: called
    /// at every graph completion of a recorded run. Quiescence means
    /// nothing is in flight anywhere — the restored run can re-enter
    /// the event loop with only the activation slot armed.
    pub(crate) fn maybe_warm_checkpoint(&mut self, now: SimTime) {
        if !self.warm.active
            || !self.suspended.is_empty()
            || self.pending_preempt
            || !self.controller.is_idle()
            || !self.queue.is_empty()
            || self.pending_reconfig.is_some()
        {
            return;
        }
        let mut residency = Vec::with_capacity(self.pool.len());
        if self.pool.capture_unclaimed(&mut residency) {
            self.warm.checkpoints.push(WarmCheckpoint {
                jobs_done: self.completed_jobs,
                event_pos: self.warm.events.len(),
                now,
                counters: self.warm_counters(),
                residency,
            });
        }
    }

    /// Restores counters, hardware residency, clock and completion
    /// bookkeeping shared by both replay flavours.
    fn warm_restore_core(
        &mut self,
        counters: &WarmCounters,
        residency: &[Option<ConfigId>],
        jobs_done: usize,
        end: SimTime,
    ) {
        self.warm_apply_counters(counters);
        self.pool.restore_unclaimed(residency);
        self.completed_jobs = jobs_done;
        self.makespan_end = end;
        self.queue.advance_to(end);
    }

    /// Restores the engine to a recorded checkpoint's quiescent state.
    pub(crate) fn warm_restore_checkpoint(&mut self, cp: &WarmCheckpoint) {
        self.warm_restore_core(&cp.counters, &cp.residency, cp.jobs_done, cp.now);
    }

    /// Restores the engine to the sealed run's end-of-run state.
    pub(crate) fn warm_restore_final(&mut self, r: &SealedRun) {
        self.warm_restore_core(
            &r.final_counters,
            &r.final_residency,
            r.jobs.len(),
            r.makespan_end,
        );
    }

    /// Re-applies the per-graph completion ledger for a replayed
    /// `GraphEnd` event — exactly what the cold completion branch
    /// pushes, minus the miss/tardiness counter bumps (those are part
    /// of the restored counter snapshot).
    pub(crate) fn warm_graph_ledger(&mut self, jobs: &[JobSpec], job: u32, at: SimTime) {
        let spec = &jobs[job as usize];
        self.graph_arrivals.push(spec.arrival);
        self.graph_completions.push(at);
        let sojourn = at.since(spec.arrival);
        let lateness = spec
            .qos
            .deadline
            .map_or(SimDuration::ZERO, |d| at.saturating_since(d));
        self.qos_records
            .push((spec.qos.priority, sojourn, lateness));
    }
}

/// The replay flavour one warm-start attempt decided on — computed
/// against the sealed reference before any engine state is mutated.
pub(crate) enum WarmPlan {
    /// Identical batch: replay the whole log, the run is over.
    Full,
    /// Shared prefix: restore checkpoint `idx`, re-simulate the tail.
    Prefix(usize),
}
