//! Internals of the streaming execution engine, decomposed by concern:
//!
//! * [`events`] — the event alphabet (the paper's Fig. 4 triggers) and
//!   the per-event dispatch;
//! * [`residency`] — everything that changes what is resident where:
//!   reuse claims, load starts, execution starts, and the incremental
//!   maintenance of the [`ReuseIndex`] as jobs arrive and retire;
//! * [`decision`] — the replacement module (the paper's Fig. 8): victim
//!   selection through [`DecisionContext`](crate::DecisionContext) and
//!   the Skip Events rule.
//!
//! [`crate::manager`] remains the thin orchestrator owning the public
//! [`Engine`](crate::Engine) / [`simulate`](crate::simulate) surface;
//! the split keeps each concern small enough to reason about while the
//! shared [`ManagerState`] stays one struct (the event loop is a state
//! machine, not a layer cake).

use crate::config::ManagerConfig;
use crate::job::JobSpec;
use crate::reuse_index::ReuseIndex;
use crate::trace::{Trace, TraceEvent};
use rtr_hw::{EnergyModel, ReconfigController, RuId, RuPool};
use rtr_sim::{EventQueue, SimTime};
use rtr_taskgraph::{ConfigId, NodeId, TaskGraph};
use std::collections::VecDeque;
use std::sync::Arc;

pub(crate) mod decision;
pub(crate) mod events;
pub(crate) mod residency;

pub(crate) use events::{Event, PRIO_JOB_ARRIVAL};

/// Design-time artifacts computed once per distinct graph template: the
/// reconfiguration sequence and its configuration projection. This is
/// the "bulk of the computations at design time" the hybrid approach
/// banks on — at run time the manager only walks precomputed arrays.
#[derive(Debug, Clone)]
pub(crate) struct TemplateInfo {
    pub(crate) rec_seq: Arc<Vec<NodeId>>,
    pub(crate) cfg_seq: Arc<Vec<ConfigId>>,
}

/// Run-time state of the current task graph.
#[derive(Debug)]
pub(crate) struct ActiveJob {
    pub(crate) idx: u32,
    pub(crate) graph: Arc<TaskGraph>,
    pub(crate) rec_seq: Arc<Vec<NodeId>>,
    pub(crate) cfg_seq: Arc<Vec<ConfigId>>,
    /// Cursor into `rec_seq`: next task to load.
    pub(crate) seq_pos: usize,
    pub(crate) pending_preds: Vec<u32>,
    pub(crate) node_ru: Vec<Option<RuId>>,
    pub(crate) loaded: Vec<bool>,
    pub(crate) exec_started: Vec<bool>,
    pub(crate) done_count: usize,
    /// Run-time Skip Events counter — "initialized externally to this
    /// function each time a new task graph starts its execution"
    /// (Fig. 8).
    pub(crate) skipped_events: u32,
    /// Per-node forced delays already honoured (mobility probes).
    pub(crate) forced_skips_done: Vec<u32>,
    pub(crate) mobility: Option<Arc<Vec<u32>>>,
    pub(crate) forced_delays: Option<Arc<Vec<u32>>>,
}

impl ActiveJob {
    pub(crate) fn new(idx: u32, spec: &JobSpec, tpl: &TemplateInfo) -> Self {
        let n = spec.graph.len();
        let pending_preds = spec
            .graph
            .node_ids()
            .map(|id| spec.graph.preds(id).len() as u32)
            .collect();
        ActiveJob {
            idx,
            graph: Arc::clone(&spec.graph),
            rec_seq: Arc::clone(&tpl.rec_seq),
            cfg_seq: Arc::clone(&tpl.cfg_seq),
            seq_pos: 0,
            pending_preds,
            node_ru: vec![None; n],
            loaded: vec![false; n],
            exec_started: vec![false; n],
            done_count: 0,
            skipped_events: 0,
            forced_skips_done: vec![0; n],
            mobility: spec.mobility.clone(),
            forced_delays: spec.forced_delays.clone(),
        }
    }

    pub(crate) fn ready(&self, node: NodeId) -> bool {
        self.loaded[node.idx()]
            && !self.exec_started[node.idx()]
            && self.pending_preds[node.idx()] == 0
    }
}

/// The mutable heart of the engine, shared by the submodules.
pub(crate) struct ManagerState {
    pub(crate) cfg: ManagerConfig,
    pub(crate) pool: RuPool,
    pub(crate) controller: ReconfigController,
    pub(crate) energy: EnergyModel,
    pub(crate) queue: EventQueue<Event>,
    /// Per-job design-time info, indexed like `jobs`.
    pub(crate) job_templates: Vec<TemplateInfo>,
    pub(crate) current: Option<ActiveJob>,
    /// Online queue: jobs that have arrived but not yet been activated,
    /// in arrival order (ties broken by submission order). This is what
    /// the replacement module's Dynamic List is built from.
    pub(crate) arrived: VecDeque<usize>,
    /// The incremental next-occurrence index over `[current] + arrived`
    /// — shared across consecutive replacement decisions instead of a
    /// per-decision stream rebuild.
    pub(crate) reuse_index: ReuseIndex,
    /// A `NewTaskGraph` event is already enqueued (prevents
    /// double-activation when several jobs arrive at the same instant).
    pub(crate) activation_pending: bool,
    pub(crate) completed_jobs: usize,
    pub(crate) trace: Trace,
    pub(crate) executed: u64,
    pub(crate) reuses: u64,
    pub(crate) loads: u64,
    pub(crate) skips: u64,
    pub(crate) stalls: u64,
    /// Arrival instant of each graph, in activation order.
    pub(crate) graph_arrivals: Vec<SimTime>,
    pub(crate) graph_completions: Vec<SimTime>,
    pub(crate) makespan_end: SimTime,
}

impl ManagerState {
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.cfg.record_trace {
            self.trace.push(ev);
        }
    }
}
