//! Internals of the streaming execution engine, decomposed by concern:
//!
//! * [`events`] — the event alphabet (the paper's Fig. 4 triggers) and
//!   the per-event dispatch;
//! * [`residency`] — everything that changes what is resident where:
//!   reuse claims, load starts, execution starts, and the incremental
//!   maintenance of the [`ReuseIndex`] as jobs arrive and retire;
//! * [`decision`] — the replacement module (the paper's Fig. 8): victim
//!   selection through [`DecisionContext`](crate::DecisionContext) and
//!   the Skip Events rule.
//!
//! [`crate::manager`] remains the thin orchestrator owning the public
//! [`Engine`](crate::Engine) / [`simulate`](crate::simulate) surface;
//! the split keeps each concern small enough to reason about while the
//! shared [`ManagerState`] stays one struct (the event loop is a state
//! machine, not a layer cake).
//!
//! **Pooling.** The engine has a reset-and-reuse lifecycle: every
//! allocation that scales with the workload — the [`ActiveJob`] scratch
//! vectors (recycled through [`JobScratch`] since graphs execute
//! sequentially, one set serves the whole run), the eviction-candidate
//! and ready-successor scratch buffers, the event heap, the
//! [`ReuseIndex`] occurrence lists and the [`Trace`] buffer — survives
//! across runs, so a replication loop's steady state performs no heap
//! allocation per activation. Design-time artifacts come from a shared
//! [`TemplateSet`](rtr_taskgraph::TemplateSet), computed once per
//! distinct template per process rather than per job or per grid cell.

use crate::config::ManagerConfig;
use crate::job::JobSpec;
use crate::policy::VictimCandidate;
use crate::reuse_index::ReuseIndex;
use crate::trace::{Trace, TraceEvent};
use rtr_hw::{EnergyModel, LoadLane, ReconfigController, RuId, RuPool};
use rtr_sim::{EventQueue, SimDuration, SimTime};
use rtr_taskgraph::{ConfigId, NodeId, TaskGraph, TemplateArtifacts};
use std::collections::VecDeque;
use std::sync::Arc;

pub(crate) mod decision;
pub(crate) mod events;
pub(crate) mod faults;
pub(crate) mod prefetch;
pub(crate) mod qos;
pub(crate) mod residency;
pub(crate) mod warm;

pub(crate) use events::{
    Event, PRIO_END_OF_EXECUTION, PRIO_END_OF_RECONFIGURATION, PRIO_JOB_ARRIVAL,
    PRIO_NEW_TASK_GRAPH, PRIO_RU_HEAL,
};

/// Run-time state of the current task graph. The per-node vectors are
/// on loan from the engine's [`JobScratch`] pool: they are moved in at
/// activation and reclaimed at graph completion, never reallocated.
#[derive(Debug)]
pub(crate) struct ActiveJob {
    pub(crate) idx: u32,
    /// Lane priority of the job's QoS class (cached from the spec: the
    /// preemption trigger compares it on every arrival).
    pub(crate) priority: u8,
    /// Shared design-time artifacts of the job's template (graph,
    /// reconfiguration sequence, configuration projection, predecessor
    /// counts).
    pub(crate) tpl: Arc<TemplateArtifacts>,
    /// Cursor into the template's `rec_seq`: next task to load.
    pub(crate) seq_pos: usize,
    pub(crate) pending_preds: Vec<u32>,
    pub(crate) node_ru: Vec<Option<RuId>>,
    pub(crate) loaded: Vec<bool>,
    pub(crate) exec_started: Vec<bool>,
    /// Per-node completion flags (`done_count` aggregates them): a
    /// suspension must distinguish finished nodes from in-flight ones.
    pub(crate) done: Vec<bool>,
    /// Start instant of the node's in-flight execution (valid while
    /// `exec_started` and not `done`) — a kill charges the elapsed part
    /// to `lost_work_cycles`.
    pub(crate) exec_start: Vec<SimTime>,
    /// Scheduled completion instant of the in-flight execution — a
    /// checkpoint preserves `exec_end − now` as the remainder.
    pub(crate) exec_end: Vec<SimTime>,
    /// Checkpointed remainder: when nonzero, the node's next execution
    /// runs for `resume_left + reconfig latency` (the restore penalty)
    /// instead of its full design-time time.
    pub(crate) resume_left: Vec<SimDuration>,
    /// Recovery queue of a resumed graph: nodes already past the
    /// sequence cursor whose placements were released at suspension, in
    /// reconfiguration-sequence order. Serviced by the demand path
    /// before the cursor advances.
    pub(crate) replaced: Vec<NodeId>,
    pub(crate) done_count: usize,
    /// Run-time Skip Events counter — "initialized externally to this
    /// function each time a new task graph starts its execution"
    /// (Fig. 8).
    pub(crate) skipped_events: u32,
    /// Per-node forced delays already honoured (mobility probes).
    pub(crate) forced_skips_done: Vec<u32>,
    pub(crate) mobility: Option<Arc<Vec<u32>>>,
    pub(crate) forced_delays: Option<Arc<Vec<u32>>>,
}

impl ActiveJob {
    pub(crate) fn new(
        idx: u32,
        spec: &JobSpec,
        tpl: &Arc<TemplateArtifacts>,
        scratch: &mut JobScratch,
    ) -> Self {
        let n = spec.graph.len();
        let mut pending_preds = std::mem::take(&mut scratch.pending_preds);
        pending_preds.clear();
        pending_preds.extend_from_slice(&tpl.pred_counts);
        let mut node_ru = std::mem::take(&mut scratch.node_ru);
        node_ru.clear();
        node_ru.resize(n, None);
        let mut loaded = std::mem::take(&mut scratch.loaded);
        loaded.clear();
        loaded.resize(n, false);
        let mut exec_started = std::mem::take(&mut scratch.exec_started);
        exec_started.clear();
        exec_started.resize(n, false);
        let mut forced_skips_done = std::mem::take(&mut scratch.forced_skips_done);
        forced_skips_done.clear();
        forced_skips_done.resize(n, 0);
        let mut done = std::mem::take(&mut scratch.done);
        done.clear();
        done.resize(n, false);
        let mut exec_start = std::mem::take(&mut scratch.exec_start);
        exec_start.clear();
        exec_start.resize(n, SimTime::ZERO);
        let mut exec_end = std::mem::take(&mut scratch.exec_end);
        exec_end.clear();
        exec_end.resize(n, SimTime::ZERO);
        let mut resume_left = std::mem::take(&mut scratch.resume_left);
        resume_left.clear();
        resume_left.resize(n, SimDuration::ZERO);
        let mut replaced = std::mem::take(&mut scratch.replaced);
        replaced.clear();
        ActiveJob {
            idx,
            priority: spec.qos.priority,
            tpl: Arc::clone(tpl),
            seq_pos: 0,
            pending_preds,
            node_ru,
            loaded,
            exec_started,
            done,
            exec_start,
            exec_end,
            resume_left,
            replaced,
            done_count: 0,
            skipped_events: 0,
            forced_skips_done,
            mobility: spec.mobility.clone(),
            forced_delays: spec.forced_delays.clone(),
        }
    }

    /// The job's task graph (shared with the template artifacts).
    pub(crate) fn graph(&self) -> &Arc<TaskGraph> {
        &self.tpl.graph
    }

    pub(crate) fn ready(&self, node: NodeId) -> bool {
        self.loaded[node.idx()]
            && !self.exec_started[node.idx()]
            && self.pending_preds[node.idx()] == 0
    }
}

/// The pooled per-node vectors loaned to the current [`ActiveJob`].
/// Graphs execute strictly sequentially, so one set suffices; it grows
/// to the largest graph seen and is never shrunk.
#[derive(Debug, Default)]
pub(crate) struct JobScratch {
    pending_preds: Vec<u32>,
    node_ru: Vec<Option<RuId>>,
    loaded: Vec<bool>,
    exec_started: Vec<bool>,
    done: Vec<bool>,
    exec_start: Vec<SimTime>,
    exec_end: Vec<SimTime>,
    resume_left: Vec<SimDuration>,
    replaced: Vec<NodeId>,
    forced_skips_done: Vec<u32>,
}

impl JobScratch {
    /// Takes the vectors back from a completed job.
    pub(crate) fn reclaim(&mut self, job: ActiveJob) {
        self.pending_preds = job.pending_preds;
        self.node_ru = job.node_ru;
        self.loaded = job.loaded;
        self.exec_started = job.exec_started;
        self.done = job.done;
        self.exec_start = job.exec_start;
        self.exec_end = job.exec_end;
        self.resume_left = job.resume_left;
        self.replaced = job.replaced;
        self.forced_skips_done = job.forced_skips_done;
    }
}

/// What the single in-flight reconfiguration is for: a demand load
/// placing a specific task, or a speculative prefetch of a bare
/// configuration (no task owns it yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReconfigKind {
    /// Demand load for the current graph's `node`.
    Demand(NodeId),
    /// Speculative prefetch of `config` (cancellable).
    Speculative(ConfigId),
}

/// The mutable heart of the engine, shared by the submodules.
pub(crate) struct ManagerState {
    pub(crate) cfg: ManagerConfig,
    pub(crate) pool: RuPool,
    pub(crate) controller: ReconfigController,
    pub(crate) energy: EnergyModel,
    pub(crate) queue: EventQueue<Event>,
    /// Per-job design-time artifacts, indexed like `jobs` (shared with
    /// the engine's template set).
    pub(crate) job_templates: Vec<Arc<TemplateArtifacts>>,
    pub(crate) current: Option<ActiveJob>,
    /// Pool of per-node vectors for the current job (see [`JobScratch`]).
    pub(crate) scratch: JobScratch,
    /// Reusable buffer for the ready successors collected during an
    /// `EndOfExecution` event (fires once per executed task).
    pub(crate) exec_ready: Vec<NodeId>,
    /// Reusable buffer for the legal eviction victims of one decision.
    pub(crate) candidates: Vec<VictimCandidate>,
    /// Online queue: jobs that have arrived but not yet been activated,
    /// in arrival order (ties broken by submission order). This is what
    /// the replacement module's Dynamic List is built from.
    pub(crate) arrived: VecDeque<usize>,
    /// The incremental next-occurrence index over `[current] + arrived`
    /// — shared across consecutive replacement decisions instead of a
    /// per-decision stream rebuild.
    pub(crate) reuse_index: ReuseIndex,
    /// The pending `NewTaskGraph` activation, if any. At most one can
    /// exist (graphs execute sequentially), so it lives in a slot the
    /// run loop merges at `PRIO_NEW_TASK_GRAPH` instead of paying
    /// queue traffic once per job; the slot also prevents
    /// double-activation when several jobs arrive at the same instant.
    pub(crate) pending_activation: Option<SimTime>,
    /// The in-flight reconfiguration's completion `(time, ru, kind)`.
    /// The port is single (at most one load in flight — demand or
    /// speculative), so this too is a slot, merged at
    /// `PRIO_END_OF_RECONFIGURATION` — the queue proper only ever holds
    /// `EndOfExecution` events (≤ RU count).
    pub(crate) pending_reconfig: Option<(SimTime, RuId, ReconfigKind)>,
    pub(crate) completed_jobs: usize,
    pub(crate) trace: Trace,
    pub(crate) executed: u64,
    pub(crate) reuses: u64,
    pub(crate) loads: u64,
    pub(crate) skips: u64,
    pub(crate) stalls: u64,
    /// Speculative loads started / completed / cancelled, and the fate
    /// of completed ones (claimed before eviction = hit, evicted before
    /// any claim = wasted). All stay zero with prefetch disabled.
    pub(crate) prefetch_issued: u64,
    pub(crate) prefetch_completed: u64,
    pub(crate) prefetch_cancelled: u64,
    pub(crate) prefetch_hits: u64,
    pub(crate) prefetch_wasted: u64,
    /// Per-RU flag: the resident configuration arrived via a completed
    /// prefetch and has not been claimed since — consulted to attribute
    /// hits and waste.
    pub(crate) prefetched: Vec<bool>,
    /// Pooled scratch for the planner's next-k-configs query.
    pub(crate) prefetch_scratch: Vec<ConfigId>,
    /// Arrival instant of each graph, in completion order (paired
    /// positionally with `graph_completions` — both are pushed together
    /// at `GraphEnd`, so the pairing survives out-of-order activation
    /// under QoS lanes and preemption).
    pub(crate) graph_arrivals: Vec<SimTime>,
    pub(crate) graph_completions: Vec<SimTime>,
    pub(crate) makespan_end: SimTime,
    /// LIFO stack of preempted graphs (priority increases toward the
    /// top). A suspended graph resumes when it out-prioritises every
    /// waiting arrival at an activation instant.
    pub(crate) suspended: Vec<ActiveJob>,
    /// Per-RU generation counter for `EndOfExecution` events. Revoking
    /// an in-flight execution bumps the RU's token, orphaning the
    /// already-scheduled completion event (dropped on pop). All zero —
    /// and never consulted — with preemption off.
    pub(crate) exec_token: Vec<u64>,
    /// A preemption was requested while a demand load was in flight;
    /// executed (after re-checking the trigger) when that load lands.
    pub(crate) pending_preempt: bool,
    /// True while the reuse index still mirrors `[current] + arrived`
    /// in plain arrival order (the legacy invariant). The first
    /// out-of-order activation, resume, or preemption clears it; from
    /// then on every activation rebuilds the index in planned order.
    pub(crate) index_fifo: bool,
    /// Job indices backing the reuse index's segments, in segment
    /// order — maps a segment ordinal back to its owner for the slack
    /// table. Maintained alongside every index mutation.
    pub(crate) segment_jobs: VecDeque<u32>,
    /// Static slack per submitted job, aligned with `jobs`:
    /// `deadline − ideal makespan` in microseconds, or
    /// [`NO_DEADLINE`](crate::policy::NO_DEADLINE). Time-invariant, so
    /// it is computed once at submit; decisions subtract `now`.
    pub(crate) job_slack: Vec<i64>,
    /// Any submitted job carries a deadline (gates all slack plumbing).
    pub(crate) qos_deadlines: bool,
    /// Any submitted job carries a non-default priority (gates the
    /// priority-lane activation scan; uniform runs keep the O(1) FIFO
    /// pop).
    pub(crate) qos_lanes: bool,
    /// Pooled buffer for the per-segment slack table attached to
    /// replacement decisions.
    pub(crate) slack_scratch: Vec<i64>,
    pub(crate) qos_preemptions: u64,
    pub(crate) qos_checkpoints: u64,
    pub(crate) qos_replayed: u64,
    pub(crate) qos_lost_work: SimDuration,
    pub(crate) qos_deadline_misses: u64,
    pub(crate) qos_tardiness: SimDuration,
    /// One `(priority, sojourn, lateness)` record per completed graph,
    /// in completion order — folded into per-class stats at `outcome`.
    pub(crate) qos_records: Vec<(u8, SimDuration, SimDuration)>,
    /// Warm-start shadow recording of the in-progress run (see
    /// [`warm`]). Inactive — and free — unless the engine is pooled
    /// and the policy opted in.
    pub(crate) warm: warm::WarmRecorder,
    /// Fault-injection runtime (see [`faults`]). Never consulted — and
    /// its draw stream never advanced — unless the run's
    /// [`FaultPlan`](crate::FaultPlan) is active.
    pub(crate) faults: faults::FaultRuntime,
}

impl ManagerState {
    /// Records a trace event. Takes a closure so disabled-trace runs
    /// (every large sweep) never even construct the event — this sits
    /// on paths that fire once per task.
    pub(crate) fn record(&mut self, ev: impl FnOnce() -> TraceEvent) {
        if self.cfg.record_trace || self.warm.active {
            let e = ev();
            if self.cfg.record_trace {
                self.trace.push(e);
            }
            if self.warm.active {
                self.warm.events.push(e);
            }
        }
    }

    /// True when the demand path may use (or take over) the port: it is
    /// idle, or the in-flight operation is a cancellable speculative
    /// load. With prefetch disabled this is exactly
    /// [`ReconfigController::is_idle`].
    pub(crate) fn demand_port_free(&self) -> bool {
        self.controller
            .in_flight()
            .is_none_or(|op| op.lane == LoadLane::Speculative)
    }
}
