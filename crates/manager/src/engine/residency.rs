//! Residency transitions: what is loaded where, and when it changes.
//!
//! This module owns every state change of the RU pool (reuse claims,
//! load starts, execution starts) and — because residency decisions are
//! driven by the future request stream — the incremental maintenance of
//! the [`ReuseIndex`](crate::ReuseIndex): jobs are indexed the moment
//! they arrive and pruned the moment their graph retires, so the index
//! always mirrors `[current job] + arrived backlog`.

use super::events::{Event, PRIO_END_OF_EXECUTION, PRIO_END_OF_RECONFIGURATION};
use super::ManagerState;
use crate::policy::{ReplacementPolicy, VictimCandidate};
use crate::trace::TraceEvent;
use rtr_hw::RuId;
use rtr_sim::SimTime;
use rtr_taskgraph::{ConfigId, NodeId};
use std::sync::Arc;

impl ManagerState {
    /// A submitted job's arrival fired: append it to the online queue
    /// and to the next-occurrence index (same order — the index's
    /// segment deque mirrors `[current] + arrived` exactly).
    pub(crate) fn note_arrival(&mut self, idx: usize) {
        self.arrived.push_back(idx);
        self.reuse_index
            .push_job(Arc::clone(&self.job_templates[idx].cfg_seq));
    }

    /// The current graph completed: drop its (fully consumed) segment
    /// from the index so memory tracks the live backlog.
    pub(crate) fn retire_front_job(&mut self) {
        self.reuse_index.retire_front();
    }

    /// Attempts the reuse claim of Fig. 8 step 1 for the sequence head:
    /// if `config` is resident and unclaimed, claim it (zero latency,
    /// zero energy), advance the sequence and start the task when
    /// ready. Returns `true` when the claim happened.
    pub(crate) fn claim_reuse(
        &mut self,
        node: NodeId,
        config: ConfigId,
        job_idx: u32,
        now: SimTime,
        policy: &mut dyn ReplacementPolicy,
    ) -> bool {
        if !self.cfg.reuse_enabled {
            return false;
        }
        let Some(ru) = self.pool.find_reusable(config) else {
            return false;
        };
        self.pool
            .claim_for_reuse(ru, config)
            .expect("find_reusable returned a claimable RU");
        {
            let job = self.current.as_mut().expect("reuse needs a current job");
            job.loaded[node.idx()] = true;
            job.node_ru[node.idx()] = Some(ru);
            job.seq_pos += 1;
        }
        self.reuses += 1;
        self.energy.record_reuse();
        self.record(TraceEvent::Reuse {
            job: job_idx,
            node,
            config,
            ru,
            at: now,
        });
        policy.on_reuse(config, ru, now);
        if self.current.as_ref().is_some_and(|j| j.ready(node)) {
            self.start_execution(node, now, policy);
        }
        true
    }

    /// The legal eviction victims: every unclaimed resident
    /// configuration, in RU-index order.
    pub(crate) fn collect_candidates(&self) -> Vec<VictimCandidate> {
        self.pool
            .eviction_candidates()
            .into_iter()
            .map(|ru| VictimCandidate {
                ru,
                config: self
                    .pool
                    .state(ru)
                    .resident_config()
                    .expect("candidates are resident"),
            })
            .collect()
    }

    /// Fig. 8 steps 6–7: triggers the reconfiguration of `config` into
    /// `target` and removes the task from the sequence. The caller
    /// guarantees the circuitry is idle and `target` is empty or an
    /// unclaimed candidate.
    pub(crate) fn begin_reconfiguration(
        &mut self,
        target: RuId,
        node: NodeId,
        config: ConfigId,
        job_idx: u32,
        now: SimTime,
    ) {
        self.pool
            .begin_load(target, config)
            .expect("target RU is empty or an unclaimed candidate");
        let completes = self.controller.start(target, config, now);
        {
            let job = self.current.as_mut().expect("loads need a current job");
            job.seq_pos += 1;
        }
        self.loads += 1;
        self.energy.record_load();
        self.record(TraceEvent::LoadStart {
            job: job_idx,
            node,
            config,
            ru: target,
            at: now,
        });
        self.queue.push(
            completes,
            PRIO_END_OF_RECONFIGURATION,
            Event::EndOfReconfiguration { ru: target, node },
        );
    }

    /// Starts executing `node` on its claimed RU (Fig. 4 lines 6–8 and
    /// 15–19).
    pub(crate) fn start_execution(
        &mut self,
        node: NodeId,
        now: SimTime,
        policy: &mut dyn ReplacementPolicy,
    ) {
        let (ru, idx, end) = {
            let job = self.current.as_mut().expect("start_execution needs a job");
            let ru = job.node_ru[node.idx()].expect("ready tasks have an RU");
            job.exec_started[node.idx()] = true;
            (ru, job.idx, now + job.graph.exec_time(node))
        };
        let config = self
            .pool
            .begin_execution(ru)
            .expect("ready tasks hold a claimed RU");
        self.queue.push(
            end,
            PRIO_END_OF_EXECUTION,
            Event::EndOfExecution { ru, node },
        );
        self.record(TraceEvent::ExecStart {
            job: idx,
            node,
            config,
            ru,
            at: now,
        });
        policy.on_exec_start(config, now);
    }
}
