//! Residency transitions: what is loaded where, and when it changes.
//!
//! This module owns every state change of the RU pool (reuse claims,
//! load starts, execution starts) and — because residency decisions are
//! driven by the future request stream — the incremental maintenance of
//! the [`ReuseIndex`](crate::ReuseIndex): jobs are indexed the moment
//! they arrive and pruned the moment their graph retires, so the index
//! always mirrors `[current job] + arrived backlog`.

use super::events::{Event, PRIO_END_OF_EXECUTION};
use super::ManagerState;
use crate::policy::{ReplacementPolicy, VictimCandidate};
use crate::trace::TraceEvent;
use rtr_hw::RuId;
use rtr_sim::SimTime;
use rtr_taskgraph::{ConfigId, NodeId};
use std::sync::Arc;

impl ManagerState {
    /// A submitted job's arrival fired: record it, append it to the
    /// online queue and to the next-occurrence index (same order — the
    /// index's segment deque mirrors `[current] + arrived` exactly).
    /// The single admission path shared by the event dispatch and the
    /// run loop's same-instant burst fast path, so per-arrival
    /// bookkeeping can never diverge between the two.
    pub(crate) fn admit_arrival(&mut self, idx: usize, now: SimTime) {
        self.record(|| TraceEvent::JobArrival {
            job: idx as u32,
            at: now,
        });
        self.arrived.push_back(idx);
        self.reuse_index
            .push_job(Arc::clone(&self.job_templates[idx].cfg_seq));
        self.segment_jobs.push_back(idx as u32);
    }

    /// The current graph completed: drop its (fully consumed) segment
    /// from the index so memory tracks the live backlog.
    pub(crate) fn retire_front_job(&mut self) {
        self.reuse_index.retire_front();
        self.segment_jobs.pop_front();
    }

    /// Attempts the reuse claim of Fig. 8 step 1 for the sequence head:
    /// if `config` is resident and unclaimed, claim it (zero latency,
    /// zero energy), advance the sequence (unless this is a recovery
    /// re-claim of an already-issued node — `advance_seq` false) and
    /// start the task when ready. Returns `true` when the claim
    /// happened.
    pub(crate) fn claim_reuse<P: ReplacementPolicy + ?Sized>(
        &mut self,
        node: NodeId,
        config: ConfigId,
        job_idx: u32,
        advance_seq: bool,
        now: SimTime,
        policy: &mut P,
    ) -> bool {
        if !self.cfg.reuse_enabled {
            return false;
        }
        let Some(ru) = self.pool.try_claim_reuse(config) else {
            return false;
        };
        self.note_claim(ru);
        {
            let job = self.current.as_mut().expect("reuse needs a current job");
            job.loaded[node.idx()] = true;
            job.node_ru[node.idx()] = Some(ru);
            if advance_seq {
                job.seq_pos += 1;
            }
        }
        self.reuses += 1;
        self.energy.record_reuse();
        self.record(|| TraceEvent::Reuse {
            job: job_idx,
            node,
            config,
            ru,
            at: now,
        });
        policy.on_reuse(config, ru, now);
        if self.current.as_ref().is_some_and(|j| j.ready(node)) {
            self.start_execution(node, now, policy);
        }
        true
    }

    /// Fills `out` with the legal eviction victims: every unclaimed
    /// resident configuration, in RU-index order. The caller passes the
    /// pooled scratch buffer — the decision path runs once per load, so
    /// a fresh Vec here would be a per-load allocation.
    pub(crate) fn fill_candidates(&self, out: &mut Vec<VictimCandidate>) {
        out.clear();
        out.extend(
            self.pool
                .iter_eviction_candidates()
                .map(|(ru, config)| VictimCandidate { ru, config }),
        );
    }

    /// Fig. 8 steps 6–7: triggers the reconfiguration of `config` into
    /// `target` and removes the task from the sequence. The caller
    /// guarantees the circuitry is idle and `target` is empty or an
    /// unclaimed candidate.
    pub(crate) fn begin_reconfiguration(
        &mut self,
        target: RuId,
        node: NodeId,
        config: ConfigId,
        job_idx: u32,
        advance_seq: bool,
        now: SimTime,
    ) {
        self.note_eviction(target);
        if self.pool.is_corrupt(target) {
            // Rewriting an upset resident repairs the unit.
            self.faults.repairs += 1;
        }
        self.pool
            .begin_load(target, config)
            .expect("target RU is empty or an unclaimed candidate");
        let completes = self.controller.start(target, config, now);
        if advance_seq {
            let job = self.current.as_mut().expect("loads need a current job");
            job.seq_pos += 1;
        }
        self.loads += 1;
        self.energy.record_load();
        self.record(|| TraceEvent::LoadStart {
            job: job_idx,
            node,
            config,
            ru: target,
            at: now,
        });
        // Single-port invariant: the completion lives in the engine's
        // reconfiguration slot, not the queue (see `ManagerState`).
        debug_assert!(self.pending_reconfig.is_none());
        self.pending_reconfig = Some((completes, target, super::ReconfigKind::Demand(node)));
    }

    /// Starts executing `node` on its claimed RU (Fig. 4 lines 6–8 and
    /// 15–19). A checkpointed node runs for its saved remainder plus
    /// one reconfiguration latency (the context-restore penalty)
    /// instead of its full design-time execution time.
    pub(crate) fn start_execution<P: ReplacementPolicy + ?Sized>(
        &mut self,
        node: NodeId,
        now: SimTime,
        policy: &mut P,
    ) {
        let restore_penalty = self.cfg.device.reconfig_latency;
        let (ru, idx, end) = {
            let job = self.current.as_mut().expect("start_execution needs a job");
            let n = node.idx();
            let ru = job.node_ru[n].expect("ready tasks have an RU");
            job.exec_started[n] = true;
            let dur = if job.resume_left[n].is_zero() {
                job.graph().exec_time(node)
            } else {
                let d = job.resume_left[n] + restore_penalty;
                job.resume_left[n] = rtr_sim::SimDuration::ZERO;
                d
            };
            job.exec_start[n] = now;
            job.exec_end[n] = now + dur;
            (ru, job.idx, now + dur)
        };
        let config = self
            .pool
            .begin_execution(ru)
            .expect("ready tasks hold a claimed RU");
        let token = self.exec_token[ru.idx()];
        self.queue.push(
            end,
            PRIO_END_OF_EXECUTION,
            Event::EndOfExecution { ru, node, token },
        );
        self.record(|| TraceEvent::ExecStart {
            job: idx,
            node,
            config,
            ru,
            at: now,
        });
        policy.on_exec_start(config, now);
    }
}
