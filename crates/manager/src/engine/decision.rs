//! The replacement module (the paper's Fig. 8): reuse claim / victim
//! selection / skip decision / load, driven by the incremental
//! [`ReuseIndex`](crate::ReuseIndex).
//!
//! The decision path is the engine's hot loop. Where the legacy
//! implementation rebuilt a `FutureView` of the whole visible stream
//! for every decision and let the policy rescan it per candidate
//! (O(stream × candidates)), this module derives a [`ReuseWindow`] —
//! two additions on the shared index — and hands the policy a
//! [`DecisionContext`] whose distance queries are one ordered lookup
//! each: O(candidates · log n) per decision, index shared across
//! consecutive decisions.

use super::{ActiveJob, ManagerState};
use crate::policy::{DecisionContext, ReplacementPolicy};
use crate::reuse_index::ReuseWindow;
use crate::trace::TraceEvent;
use rtr_hw::RuId;
use rtr_sim::SimTime;

/// Outcome of one replacement-module invocation while the pooled
/// candidate buffer is on loan.
enum Decision {
    /// No legal victim: retry at the next event.
    Stall,
    /// Skip Events delayed the reconfiguration to the next event.
    Skip,
    /// Evict the chosen RU and reconfigure into it.
    Evict(RuId),
}

impl ManagerState {
    /// The visible Dynamic-List window of a decision for the current
    /// `job`: the rest of its configuration sequence *after* the entry
    /// being placed now, then the next `lookahead` arrived jobs.
    ///
    /// Only *arrived* jobs are visible — an online manager cannot look
    /// into arrivals that have not happened yet, so even
    /// `Lookahead::All` is clairvoyant only about the enqueued backlog.
    /// In the batch setting every job arrives at t = 0 and this is
    /// exactly the paper's Dynamic List over the remaining sequence.
    fn decision_window(&self, job: &ActiveJob, is_recovery: bool) -> ReuseWindow {
        // A recovery re-load places an already-issued node, so the
        // sequence head itself is still part of the visible future.
        let consumed = job.seq_pos + usize::from(!is_recovery);
        let visible = self.cfg.lookahead.visible_graphs(self.arrived.len());
        self.reuse_index.window(consumed, visible)
    }

    /// The replacement module (Fig. 8) plus the speculative lane:
    /// processes the head of the reconfiguration sequence while the
    /// circuitry is available to demand, then — if the demand path left
    /// the port idle and prefetching is enabled — runs one prefetch
    /// planning round ([`ManagerState::try_prefetch`]).
    pub(crate) fn try_advance<P: ReplacementPolicy + ?Sized>(
        &mut self,
        now: SimTime,
        policy: &mut P,
    ) {
        self.advance_demand(now, policy);
        if self.cfg.prefetch.enabled() && self.controller.is_idle() {
            self.try_prefetch(now);
        }
    }

    /// The demand path: reuse claims cascade (they occupy no
    /// circuitry); at most one load can start (it occupies the
    /// circuitry, cancelling an in-flight speculative load if one holds
    /// the port). A resumed graph's recovery queue is serviced before
    /// the sequence cursor advances — those nodes were already issued
    /// once and lost their placement at suspension.
    fn advance_demand<P: ReplacementPolicy + ?Sized>(&mut self, now: SimTime, policy: &mut P) {
        loop {
            if !self.demand_port_free() {
                return;
            }
            let (node, config, job_idx, forced_delay_pending, is_recovery) = {
                let Some(job) = self.current.as_ref() else {
                    return;
                };
                if let Some(&node) = job.replaced.first() {
                    (node, job.graph().config_of(node), job.idx, false, true)
                } else {
                    if job.seq_pos >= job.tpl.rec_seq.len() {
                        return;
                    }
                    let node = job.tpl.rec_seq[job.seq_pos];
                    let forced = job
                        .forced_delays
                        .as_ref()
                        .is_some_and(|req| job.forced_skips_done[node.idx()] < req[node.idx()]);
                    (node, job.tpl.cfg_seq[job.seq_pos], job.idx, forced, false)
                }
            };

            // Forced delay probes (design-time mobility calculation,
            // Fig. 6): delay this load by one event, unconditionally.
            if forced_delay_pending {
                let job = self.current.as_mut().expect("checked above");
                job.forced_skips_done[node.idx()] += 1;
                self.skips += 1;
                self.record(|| TraceEvent::Skip {
                    job: job_idx,
                    node,
                    forced: true,
                    at: now,
                });
                return;
            }

            // Reuse: "the RU has identified that a task can be reused
            // since it was already loaded in a previous execution".
            if self.claim_reuse(node, config, job_idx, !is_recovery, now, policy) {
                if is_recovery {
                    let job = self.current.as_mut().expect("checked above");
                    job.replaced.remove(0);
                }
                continue;
            }

            // The head needs the single port. If a speculative load
            // holds it, either coalesce (the prefetch is writing
            // exactly the configuration the head wants — waiting for
            // the partial write beats aborting and restarting it) or
            // cancel it (demand never queues behind speculation).
            if let Some(op) = self.controller.in_flight() {
                if op.config == config {
                    return; // coalesce: claimed via reuse on completion
                }
                self.cancel_prefetch(now);
            }

            // Pick the destination RU: a free one if it exists,
            // otherwise ask the policy for a victim (Fig. 8 step 2).
            // The candidate list lives in the engine's pooled scratch
            // buffer (taken out for the borrow, returned on every exit).
            let target = if let Some(ru) = self.pool.first_empty() {
                ru
            } else {
                let mut candidates = std::mem::take(&mut self.candidates);
                self.fill_candidates(&mut candidates);
                // Deadline-aware runs attach a per-segment slack table
                // so the policy can weigh owners' urgency; the buffer
                // is pooled and stays empty otherwise.
                if self.qos_deadlines {
                    self.fill_slack_scratch();
                }
                let slack_buf = std::mem::take(&mut self.slack_scratch);
                let outcome = if candidates.is_empty() {
                    // Fig. 8 step 3: no victim — retry at the next event.
                    Decision::Stall
                } else {
                    let job = self.current.as_ref().expect("checked above");
                    let window = self.decision_window(job, is_recovery);
                    let mut ctx = DecisionContext::indexed(
                        now,
                        config,
                        &candidates,
                        &self.reuse_index,
                        window,
                    );
                    if !slack_buf.is_empty() {
                        ctx = ctx.with_owner_slack(&slack_buf);
                    }
                    let victim = policy.select_victim(&ctx);
                    let victim_cfg = candidates
                        .iter()
                        .find(|c| c.ru == victim)
                        .unwrap_or_else(|| {
                            panic!(
                                "policy {} returned a non-candidate victim {victim}",
                                policy.name()
                            )
                        })
                        .config;
                    // Fig. 8 steps 4–5: Skip Events. If the victim's
                    // configuration will be requested within the visible
                    // window and the new task still has mobility budget,
                    // delay the reconfiguration to the next event.
                    let do_skip = !is_recovery
                        && self.cfg.skip_events
                        && job.mobility.as_ref().is_some_and(|mob| {
                            mob[node.idx()] > job.skipped_events
                                && self.reuse_index.contains(victim_cfg, window)
                        });
                    if do_skip {
                        Decision::Skip
                    } else {
                        Decision::Evict(victim)
                    }
                };
                self.candidates = candidates;
                self.slack_scratch = slack_buf;
                match outcome {
                    Decision::Stall => {
                        self.stalls += 1;
                        self.record(|| TraceEvent::Stall {
                            job: job_idx,
                            node,
                            at: now,
                        });
                        return;
                    }
                    Decision::Skip => {
                        let job = self.current.as_mut().expect("checked above");
                        job.skipped_events += 1;
                        self.skips += 1;
                        self.record(|| TraceEvent::Skip {
                            job: job_idx,
                            node,
                            forced: false,
                            at: now,
                        });
                        return;
                    }
                    Decision::Evict(victim) => victim,
                }
            };

            self.begin_reconfiguration(target, node, config, job_idx, !is_recovery, now);
            if is_recovery {
                let job = self.current.as_mut().expect("checked above");
                job.replaced.remove(0);
            }
            // Controller now busy: the loop exits on the next check.
        }
    }
}
