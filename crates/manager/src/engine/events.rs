//! The engine's event alphabet and per-event dispatch — the paper's
//! Fig. 4 pseudo-code, one match arm per line group.

use super::{ActiveJob, ManagerState};
use crate::job::JobSpec;
use crate::policy::ReplacementPolicy;
use crate::trace::TraceEvent;
use rtr_hw::{LoadLane, RuId};
use rtr_sim::SimTime;
use rtr_taskgraph::{ConfigId, NodeId};

/// Same-time event ordering (lower fires first): task completions are
/// observed before reconfiguration completions, then arrivals enter the
/// online queue, and graph activations happen after all same-instant
/// completions and arrivals.
pub(crate) const PRIO_END_OF_EXECUTION: u8 = 0;
pub(crate) const PRIO_END_OF_RECONFIGURATION: u8 = 1;
pub(crate) const PRIO_JOB_ARRIVAL: u8 = 2;
pub(crate) const PRIO_NEW_TASK_GRAPH: u8 = 3;
/// RU repairs land after every same-instant completion, arrival and
/// activation — a healed unit serves the *next* decision, never the
/// one already being made at its instant.
pub(crate) const PRIO_RU_HEAL: u8 = 4;

/// Events driving the manager.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// Job `idx` enters the online queue.
    JobArrival { idx: usize },
    /// The longest-waiting arrived job becomes current.
    NewTaskGraph,
    /// The in-flight demand reconfiguration finished.
    EndOfReconfiguration { ru: RuId, node: NodeId },
    /// The in-flight speculative reconfiguration finished (shares the
    /// reconfiguration priority class — the port is single, so the two
    /// can never be simultaneous).
    EndOfPrefetch { ru: RuId, config: ConfigId },
    /// A task finished executing. `token` is the RU's execution
    /// generation at start time: a preemption that revokes the
    /// execution bumps the RU's counter, so this event arrives stale
    /// and is dropped. Always zero with preemption off.
    EndOfExecution { ru: RuId, node: NodeId, token: u64 },
    /// A quarantined RU finished its repair and rejoins the pool
    /// (fault plans with a repair latency only).
    RuHeal { ru: RuId },
}

impl ManagerState {
    /// Dispatches one event (the body of the paper's Fig. 4). Generic
    /// over the policy type so concrete-policy runs
    /// ([`Engine::run_with`](crate::Engine::run_with)) monomorphise the
    /// whole event loop — the per-event callback fan-out inlines
    /// instead of going through vtable dispatch.
    pub(crate) fn handle<P: ReplacementPolicy + ?Sized>(
        &mut self,
        ev: Event,
        now: SimTime,
        jobs: &[JobSpec],
        policy: &mut P,
    ) {
        match ev {
            Event::JobArrival { idx } => {
                self.admit_arrival(idx, now);
                if self.current.is_none() {
                    // Idle manager: resume by activating at this instant
                    // (unless a same-instant activation is already
                    // pending — the slot holds at most one).
                    if self.pending_activation.is_none() {
                        self.pending_activation = Some(now);
                    }
                } else if self.cfg.preemption.enabled()
                    && self
                        .current
                        .as_ref()
                        .is_some_and(|j| jobs[idx].qos.priority > j.priority)
                {
                    // A strictly-higher-priority arrival suspends the
                    // running graph (immediately, or once the in-flight
                    // demand load lands); the activation slot then picks
                    // the highest-priority waiter at this same instant.
                    self.request_preemption(now, jobs);
                    if self.current.is_some() {
                        self.try_advance(now, policy);
                    }
                } else {
                    // The Dynamic List just grew: a stalled or skipped
                    // reconfiguration of the current graph may retry at
                    // this event.
                    self.try_advance(now, policy);
                }
            }
            Event::NewTaskGraph => {
                debug_assert!(self.current.is_none(), "graphs execute sequentially");
                debug_assert!(
                    self.controller
                        .in_flight()
                        .is_none_or(|op| op.lane == LoadLane::Speculative),
                    "no cross-graph demand reconfigurations can be in flight \
                     (a speculative prefetch may span the boundary)"
                );
                let best = self.best_arrived(jobs);
                let resume = self
                    .suspended
                    .last()
                    .is_some_and(|s| best.is_none_or(|(_, p)| s.priority >= p));
                if resume {
                    self.resume_suspended(now, policy);
                    self.rebuild_reuse_index(jobs);
                } else {
                    let (pos, _) = best.expect("activation follows an arrival");
                    let idx = if pos == 0 {
                        self.arrived.pop_front().expect("best_arrived saw it")
                    } else {
                        self.arrived.remove(pos).expect("best_arrived saw it")
                    };
                    let job = ActiveJob::new(
                        idx as u32,
                        &jobs[idx],
                        &self.job_templates[idx],
                        &mut self.scratch,
                    );
                    self.record(|| TraceEvent::GraphStart {
                        job: idx as u32,
                        at: now,
                    });
                    self.current = Some(job);
                    policy.on_graph_start(idx as u32, now);
                    // Skipping the rebuild is only sound while the index
                    // still mirrors plain arrival order and nothing is
                    // suspended — i.e. on every uniform-priority run.
                    if !(self.index_fifo && pos == 0 && self.suspended.is_empty()) {
                        self.rebuild_reuse_index(jobs);
                        self.index_fifo = false;
                    }
                }
                self.try_advance(now, policy);
            }
            Event::EndOfReconfiguration { ru, node } => {
                let op = self.controller.complete(now);
                debug_assert_eq!(op.ru, ru);
                if !self.cfg.faults.is_off() {
                    // Integrity-check the transfer before accepting it.
                    if self
                        .faults
                        .transfer_corrupt(self.cfg.faults.load_fault_pm, op.config)
                    {
                        self.fault_demand_corrupt(ru, node, op.config, now, policy);
                        return;
                    }
                    self.faults.load_attempts = 0;
                }
                let config = self
                    .pool
                    .finish_load(ru)
                    .expect("manager drives RU transitions correctly");
                let job_idx = {
                    let job = self
                        .current
                        .as_mut()
                        .expect("loads only happen for the current graph");
                    job.loaded[node.idx()] = true;
                    job.node_ru[node.idx()] = Some(ru);
                    job.idx
                };
                self.record(|| TraceEvent::LoadEnd {
                    job: job_idx,
                    node,
                    config,
                    ru,
                    at: now,
                });
                policy.on_load_complete(config, ru, now);
                // A preemption deferred behind this demand load executes
                // now, before the landed task can start (its claim is
                // released and recovered on resume instead).
                if self.pending_preempt {
                    self.pending_preempt = false;
                    self.execute_preemption(now, jobs);
                    if self.current.is_none() {
                        return;
                    }
                }
                // Fig. 4 lines 6–8: start the task if it is ready.
                if self.current.as_ref().is_some_and(|j| j.ready(node)) {
                    self.start_execution(node, now, policy);
                }
                // Fig. 4 line 9: invoke the replacement module again.
                self.try_advance(now, policy);
            }
            Event::EndOfPrefetch { ru, config } => {
                let op = self.controller.complete(now);
                debug_assert_eq!(op.ru, ru);
                if !self.cfg.faults.is_off() {
                    // Integrity-check the transfer before accepting it.
                    if self
                        .faults
                        .transfer_corrupt(self.cfg.faults.load_fault_pm, config)
                    {
                        self.fault_prefetch_corrupt(ru, config, now, policy);
                        return;
                    }
                    self.faults.load_attempts = 0;
                }
                self.finish_prefetch(ru, config, now);
                // The speculative resident may satisfy the head (a
                // coalesced demand claims it via reuse here), and the
                // now-idle port may plan the next prefetch.
                self.try_advance(now, policy);
            }
            Event::EndOfExecution { ru, node, token } => {
                if token != self.exec_token[ru.idx()] {
                    // The execution this completion belonged to was
                    // revoked by a preemption; the event is stale.
                    return;
                }
                let config = self
                    .pool
                    .finish_execution(ru)
                    .expect("manager drives RU transitions correctly");
                let (job_idx, done, graph_len) = {
                    let job = self
                        .current
                        .as_mut()
                        .expect("executions only happen for the current graph");
                    job.done_count += 1;
                    job.done[node.idx()] = true;
                    (job.idx, job.done_count, job.graph().len())
                };
                self.executed += 1;
                self.record(|| TraceEvent::ExecEnd {
                    job: job_idx,
                    node,
                    config,
                    ru,
                    at: now,
                });
                policy.on_exec_end(config, now);
                // Fig. 4 lines 11–13: replacement module first, if the
                // reconfiguration circuitry is available to demand (an
                // in-flight speculative load does not block it — the
                // demand path cancels or coalesces as needed).
                if self.demand_port_free() {
                    self.try_advance(now, policy);
                }
                // Fig. 4 line 14: update task dependencies. The ready
                // set goes through the pooled `exec_ready` buffer —
                // this path fires once per executed task, so a fresh
                // Vec here would be a per-task allocation.
                let mut to_start = std::mem::take(&mut self.exec_ready);
                to_start.clear();
                if let Some(job) = self.current.as_mut() {
                    {
                        // Split borrow: the successor list lives in the
                        // template while the counters are mutated.
                        let ActiveJob {
                            tpl, pending_preds, ..
                        } = &mut *job;
                        for &s in tpl.graph.succs(node) {
                            pending_preds[s.idx()] -= 1;
                        }
                    }
                    // Fig. 4 lines 15–19: start loaded ready tasks.
                    for &s in job.tpl.graph.succs(node) {
                        if job.ready(s) {
                            to_start.push(s);
                        }
                    }
                }
                for &ready in &to_start {
                    self.start_execution(ready, now, policy);
                }
                to_start.clear();
                self.exec_ready = to_start;
                // Graph completion → activate the longest-waiting
                // arrived job, or go idle until the next arrival.
                if done == graph_len {
                    self.record(|| TraceEvent::GraphEnd {
                        job: job_idx,
                        at: now,
                    });
                    policy.on_graph_end(job_idx, now);
                    let finished = self.current.take().expect("checked above");
                    self.scratch.reclaim(finished);
                    self.retire_front_job();
                    self.completed_jobs += 1;
                    // QoS ledger: arrivals and completions are pushed
                    // together so positional pairing survives
                    // out-of-order activation; default-class jobs get a
                    // zero-lateness record.
                    let spec = &jobs[job_idx as usize];
                    self.graph_arrivals.push(spec.arrival);
                    self.graph_completions.push(now);
                    let sojourn = now.since(spec.arrival);
                    let lateness = spec
                        .qos
                        .deadline
                        .map_or(rtr_sim::SimDuration::ZERO, |d| now.saturating_since(d));
                    if !lateness.is_zero() {
                        self.qos_deadline_misses += 1;
                        self.qos_tardiness += lateness;
                    }
                    self.qos_records
                        .push((spec.qos.priority, sojourn, lateness));
                    self.pending_preempt = false;
                    if !self.arrived.is_empty() || !self.suspended.is_empty() {
                        debug_assert!(
                            self.pending_activation.is_none(),
                            "no activation can pend while a graph was current"
                        );
                        self.pending_activation = Some(now);
                    }
                    // Graph completions are the warm-start checkpoint
                    // sites: with nothing in flight this instant is
                    // fully restorable (no-op unless recording).
                    self.maybe_warm_checkpoint(now);
                }
                // Executions are the fault clock: each completion draws
                // once for a resident upset and once for an RU hard
                // fault (no-ops on an inactive plan).
                if !self.cfg.faults.is_off() {
                    self.fault_post_exec(now, policy);
                }
            }
            Event::RuHeal { ru } => self.fault_heal(ru, now, policy),
        }
    }
}
