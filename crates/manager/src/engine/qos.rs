//! Preemption and resume machinery for QoS-class scheduling.
//!
//! A strictly-higher-priority arrival may suspend the running graph
//! (policy-gated by [`PreemptionMode`](crate::qos::PreemptionMode)):
//!
//! * **Checkpoint** — in-flight executions are revoked and their
//!   remainders saved; on resume each checkpointed node re-runs for
//!   `remainder + reconfig latency` (the restore penalty).
//! * **Kill** — in-flight executions are revoked and discarded; the
//!   elapsed part is charged to `lost_work_cycles` and the node replays
//!   in full from its last completed predecessor frontier.
//!
//! In both modes, loaded-but-idle claims are released and every
//! not-yet-done placement is forgotten; a resumed graph re-places them
//! through its recovery queue ([`ActiveJob::replaced`]) before its
//! sequence cursor advances, re-claiming residents where possible
//! (counted as reuses) and re-loading otherwise.
//!
//! Suspended graphs stack LIFO; because only a strictly higher priority
//! preempts, priority increases toward the top of the stack, and the
//! top resumes as soon as it out-prioritises every waiting arrival at
//! an activation instant.

use super::{ManagerState, ReconfigKind};
use crate::job::JobSpec;
use crate::policy::ReplacementPolicy;
use crate::qos::PreemptionMode;
use crate::trace::TraceEvent;
use rtr_sim::SimTime;
use std::sync::Arc;

impl ManagerState {
    /// The waiting arrival with the highest lane priority: returns its
    /// position in `arrived` and its priority. Ties keep the earliest
    /// arrival, so uniform-priority runs always pick position 0 — the
    /// legacy FIFO pop. The scan is gated on `qos_lanes` to keep the
    /// default path O(1).
    pub(crate) fn best_arrived(&self, jobs: &[JobSpec]) -> Option<(usize, u8)> {
        let &front = self.arrived.front()?;
        if !self.qos_lanes {
            return Some((0, jobs[front].qos.priority));
        }
        let mut best = (0usize, jobs[front].qos.priority);
        for (k, &i) in self.arrived.iter().enumerate().skip(1) {
            let p = jobs[i].qos.priority;
            if p > best.1 {
                best = (k, p);
            }
        }
        Some(best)
    }

    /// Requests a preemption of the current graph. If a demand load is
    /// in flight the request is deferred until that load lands (the
    /// single port cannot abandon a demand reconfiguration mid-frame);
    /// otherwise it executes immediately.
    pub(crate) fn request_preemption(&mut self, now: SimTime, jobs: &[JobSpec]) {
        if matches!(self.pending_reconfig, Some((_, _, ReconfigKind::Demand(_)))) {
            self.pending_preempt = true;
            return;
        }
        self.execute_preemption(now, jobs);
    }

    /// Suspends the current graph if the trigger still holds (a waiting
    /// arrival strictly out-prioritises it); re-checking makes deferred
    /// requests self-healing. The preemptor is not activated here — the
    /// standard activation slot fires at the same instant and picks the
    /// highest-priority waiter, which also handles several same-instant
    /// arrivals correctly.
    pub(crate) fn execute_preemption(&mut self, now: SimTime, jobs: &[JobSpec]) {
        debug_assert!(self.cfg.preemption.enabled());
        debug_assert!(
            !matches!(self.pending_reconfig, Some((_, _, ReconfigKind::Demand(_)))),
            "preemption must not interrupt an in-flight demand load"
        );
        let Some(best) = self.best_arrived(jobs) else {
            return;
        };
        let Some(job) = self.current.as_ref() else {
            return;
        };
        if best.1 <= job.priority {
            return;
        }
        let preemptor = self.arrived[best.0] as u32;
        let mut job = self.current.take().expect("checked above");
        self.qos_preemptions += 1;
        let victim = job.idx;
        self.record(|| TraceEvent::Preempt {
            victim,
            preemptor,
            at: now,
        });
        let kill = matches!(self.cfg.preemption, PreemptionMode::Kill);
        for pos in 0..job.tpl.rec_seq.len() {
            let node = job.tpl.rec_seq[pos];
            let n = node.idx();
            if job.done[n] || !job.loaded[n] {
                continue;
            }
            let ru = job.node_ru[n].expect("loaded nodes hold an RU");
            if job.exec_started[n] {
                self.pool
                    .revoke_execution(ru)
                    .expect("revoking an in-flight execution");
                self.exec_token[ru.idx()] += 1;
                job.exec_started[n] = false;
                if kill {
                    self.qos_replayed += 1;
                    self.qos_lost_work += now.since(job.exec_start[n]);
                    self.record(|| TraceEvent::NodeKilled {
                        job: victim,
                        node,
                        ru,
                        at: now,
                    });
                } else {
                    debug_assert!(job.exec_end[n] > now, "completion would have fired first");
                    job.resume_left[n] = job.exec_end[n].since(now);
                    self.qos_checkpoints += 1;
                    self.record(|| TraceEvent::NodeCheckpointed {
                        job: victim,
                        node,
                        ru,
                        at: now,
                    });
                }
            } else {
                self.pool
                    .release_claim(ru)
                    .expect("releasing a waiting claim");
            }
            // Forget the placement either way; the recovery queue
            // re-places it on resume.
            job.loaded[n] = false;
            job.node_ru[n] = None;
        }
        self.suspended.push(job);
        self.index_fifo = false;
        if self.pending_activation.is_none() {
            self.pending_activation = Some(now);
        }
    }

    /// Pops the suspended stack's top, queues its recovery work and
    /// makes it current again. Caller must have verified the resume
    /// condition and must rebuild the reuse index afterwards.
    pub(crate) fn resume_suspended<P: ReplacementPolicy + ?Sized>(
        &mut self,
        now: SimTime,
        policy: &mut P,
    ) -> u32 {
        let mut job = self.suspended.pop().expect("resume with empty stack");
        let idx = job.idx;
        self.record(|| TraceEvent::GraphResume { job: idx, at: now });
        // Nodes already past the sequence cursor lost their placements
        // at suspension; queue them for re-claim/re-load in sequence
        // order. Completed nodes stay done.
        job.replaced.clear();
        for pos in 0..job.seq_pos {
            let node = job.tpl.rec_seq[pos];
            if !job.done[node.idx()] {
                job.replaced.push(node);
            }
        }
        self.current = Some(job);
        policy.on_graph_start(idx, now);
        idx
    }

    /// Rebuilds the reuse index (and the segment-owner map) in planned
    /// service order: current graph first, then the suspended stack top
    /// to bottom, then waiting arrivals by priority lane (ties in
    /// arrival order). Called at every activation once the FIFO
    /// invariant is lost — uniform-priority runs never get here.
    pub(crate) fn rebuild_reuse_index(&mut self, jobs: &[JobSpec]) {
        self.reuse_index.clear();
        self.segment_jobs.clear();
        if let Some(job) = &self.current {
            self.reuse_index.push_job(Arc::clone(&job.tpl.cfg_seq));
            self.segment_jobs.push_back(job.idx);
        }
        for job in self.suspended.iter().rev() {
            self.reuse_index.push_job(Arc::clone(&job.tpl.cfg_seq));
            self.segment_jobs.push_back(job.idx);
        }
        // Rebuilds are rare (one per preemption/resume/out-of-order
        // activation), so a local sort buffer is fine here.
        let mut order: Vec<(u8, usize)> = self
            .arrived
            .iter()
            .enumerate()
            .map(|(k, &i)| (jobs[i].qos.priority, k))
            .collect();
        order.sort_by_key(|&(p, k)| (std::cmp::Reverse(p), k));
        for &(_, k) in &order {
            let i = self.arrived[k];
            self.reuse_index
                .push_job(Arc::clone(&self.job_templates[i].cfg_seq));
            self.segment_jobs.push_back(i as u32);
        }
    }

    /// Fills the pooled slack table for one replacement decision:
    /// `slack_scratch[segment]` is the static slack of the segment's
    /// owner. Only called when some job carries a deadline.
    /// True when the job owning the reuse-index position `pos` has a
    /// deadline and no slack left at `now` — the prefetch guard's
    /// protected-resident test.
    pub(crate) fn owner_out_of_slack(&self, pos: u64, now: SimTime) -> bool {
        let Some(seg) = self.reuse_index.segment_of(pos) else {
            return false;
        };
        let Some(&idx) = self.segment_jobs.get(seg) else {
            return false;
        };
        let s = self.job_slack[idx as usize];
        s != crate::policy::NO_DEADLINE && s - now.as_us() as i64 <= 0
    }

    pub(crate) fn fill_slack_scratch(&mut self) {
        let ManagerState {
            slack_scratch,
            segment_jobs,
            job_slack,
            ..
        } = self;
        slack_scratch.clear();
        slack_scratch.extend(segment_jobs.iter().map(|&i| job_slack[i as usize]));
    }
}
