//! Reuse-aware configuration prefetching: the speculative lane of the
//! single reconfiguration port.
//!
//! The paper's hybrid manager interleaves replacement with loading
//! configurations *in advance of demand* whenever the reconfiguration
//! circuitry is idle. Done naively, prefetching destroys exactly the
//! reuse that replacement fought to keep — the Fig. 3 hazard: eagerly
//! loading T5 into the RU that still holds reusable T1 turns a
//! zero-cost reuse into a full reload. The planner here is therefore
//! *reuse-aware*, built on the same [`ReuseIndex`] the replacement
//! module queries:
//!
//! 1. **What to fetch** — the nearest distinct upcoming configurations
//!    of the visible window (the current graph's unissued requests,
//!    blocked head included, then the arrived backlog up to the
//!    configured `Lookahead`), via
//!    [`ReuseIndex::next_k_configs`], skipping anything already
//!    resident. The window is clamped to [`PREFETCH_HORIZON`] requests
//!    so a planning round never degenerates into a full-stream scan.
//! 2. **Where to put it** — an empty RU if one exists; otherwise the
//!    unclaimed resident whose configuration has the *farthest* next
//!    use (never reappearing beats everything; ties break on the lower
//!    RU index, like the demand path's policies).
//! 3. **The guard** — a speculative load may evict a resident
//!    configuration only when that resident's next use is *strictly
//!    farther* than the fetched configuration's. Anything else would
//!    trade a nearer reuse away for a farther one — the validator
//!    enforces this on every recorded trace.
//! 4. **Demand always wins** — a speculative load only starts on an
//!    idle port after the demand path declined it, and is cancelled
//!    mid-write the moment a demand load needs the port
//!    ([`ManagerState::cancel_prefetch`]). The one exception: when the
//!    demand path wants the very configuration that is being
//!    prefetched, it *coalesces* — waiting for the in-flight write to
//!    finish is strictly cheaper than aborting and restarting it.
//!
//! With `PrefetchConfig::off()` (the default) none of this code runs
//! and the engine is bit-exact with the pre-prefetch golden outputs.
//!
//! [`ReuseIndex`]: crate::ReuseIndex
//! [`ReuseIndex::next_k_configs`]: crate::ReuseIndex::next_k_configs

use super::{ManagerState, ReconfigKind};
use crate::trace::TraceEvent;
use rtr_hw::RuId;
use rtr_sim::SimTime;
use rtr_taskgraph::ConfigId;
use std::mem;

/// Upper bound on the number of window requests one planning round may
/// scan while looking for its `depth` distinct candidates. Keeps the
/// idle-port planner O(1)-ish per event even when a clairvoyant
/// (`Lookahead::All`) run has thousands of backlog jobs indexed.
pub(crate) const PREFETCH_HORIZON: usize = 256;

impl ManagerState {
    /// One planning round: issue at most one speculative load on the
    /// (idle) port. Called by the demand path whenever it leaves the
    /// port idle; a no-op unless prefetching is enabled.
    pub(crate) fn try_prefetch(&mut self, now: SimTime) {
        debug_assert!(self.controller.is_idle());
        debug_assert!(self.cfg.prefetch.enabled());
        // Prefetching without reuse is pure waste: a speculative
        // resident could never be claimed.
        if !self.cfg.reuse_enabled {
            return;
        }
        let Some(job) = self.current.as_ref() else {
            // Between graphs (or idle): the index front segment is
            // retired, so there is no well-defined window. The
            // activation firing at this same instant re-enters here.
            return;
        };
        let visible = self.cfg.lookahead.visible_graphs(self.arrived.len());
        // The window starts at `seq_pos` — *including* the head. The
        // planner only runs after the demand path declined the port, so
        // the head is still unissued: on the forced-delay/skip paths
        // its configuration may even be resident-unclaimed, and hiding
        // its request from the guard would let a speculative load evict
        // exactly the configuration demand needs next (the hazard this
        // subsystem exists to prevent). Including it both protects such
        // residents (nearest possible next use — never a legal victim)
        // and lets the planner speculate on a blocked head's missing
        // configuration, which the demand path then claims or coalesces
        // onto.
        let window = self
            .reuse_index
            .window(job.seq_pos, visible)
            .clamp_len(PREFETCH_HORIZON);
        if window.is_empty() {
            return;
        }
        let mut wanted = mem::take(&mut self.prefetch_scratch);
        self.reuse_index
            .next_k_configs(window, self.cfg.prefetch.depth, &mut wanted);
        for &config in &wanted {
            // Resident in any state (loaded, claimed, executing) —
            // nothing to gain. `Loading` cannot occur: the port is idle.
            if self.pool.is_resident(config) {
                continue;
            }
            let target = if let Some(ru) = self.pool.first_empty() {
                Some(ru)
            } else {
                self.prefetch_victim(config, window, now)
            };
            if let Some(ru) = target {
                self.begin_prefetch(ru, config, now);
                break; // single port: one speculative load at a time
            }
        }
        wanted.clear();
        self.prefetch_scratch = wanted;
    }

    /// The guard and the victim choice: among the unclaimed residents,
    /// the one whose configuration has the farthest next use in
    /// `window` — and only if that next use is *strictly farther* than
    /// `config`'s (a resident absent from the window counts as
    /// farthest: its true next use, if any, lies beyond every in-window
    /// position). On deadline-aware runs, a resident whose in-window
    /// owner is already out of slack is never speculated away — a
    /// zero-slack job cannot afford to trade its reuse for a reload.
    /// Returns `None` when no resident may legally be evicted for
    /// `config`.
    fn prefetch_victim(
        &self,
        config: ConfigId,
        window: crate::reuse_index::ReuseWindow,
        now: SimTime,
    ) -> Option<RuId> {
        let fetch_pos = self
            .reuse_index
            .next_use(config, window)
            .expect("planner candidates come from the window");
        // `None` next use = never reappears in the window = best victim.
        let mut best: Option<(RuId, Option<u64>)> = None;
        for (ru, resident) in self.pool.iter_eviction_candidates() {
            let pos = self.reuse_index.next_use(resident, window);
            let farther = pos.is_none_or(|p| p > fetch_pos);
            if !farther {
                continue;
            }
            if self.qos_deadlines && pos.is_some_and(|p| self.owner_out_of_slack(p, now)) {
                continue;
            }
            let better = match (&best, pos) {
                (None, _) => true,
                // First never-reappearing victim wins ties (lowest RU).
                (Some((_, None)), _) => false,
                (Some((_, Some(_))), None) => true,
                (Some((_, Some(b))), Some(p)) => p > *b,
            };
            if better {
                best = Some((ru, pos));
            }
        }
        best.map(|(ru, _)| ru)
    }

    /// Starts the speculative load of `config` into `ru` and arms the
    /// engine's reconfiguration slot with a cancellable completion.
    fn begin_prefetch(&mut self, ru: RuId, config: ConfigId, now: SimTime) {
        self.note_eviction(ru);
        if self.pool.is_corrupt(ru) {
            // Rewriting an upset resident repairs the unit.
            self.faults.repairs += 1;
        }
        self.pool
            .begin_load(ru, config)
            .expect("prefetch target is empty or an unclaimed candidate");
        let completes = self.controller.start_speculative(ru, config, now);
        self.prefetch_issued += 1;
        self.record(|| TraceEvent::PrefetchStart {
            config,
            ru,
            at: now,
        });
        debug_assert!(self.pending_reconfig.is_none());
        self.pending_reconfig = Some((completes, ru, ReconfigKind::Speculative(config)));
    }

    /// The in-flight speculative load finished (the caller already
    /// completed the port operation and integrity-checked it): the
    /// configuration is resident and *unclaimed* — immediately
    /// claimable by the demand path (a hit) and evictable by
    /// replacement (then counted wasted).
    pub(crate) fn finish_prefetch(&mut self, ru: RuId, config: ConfigId, now: SimTime) {
        let loaded = self
            .pool
            .finish_load_unclaimed(ru)
            .expect("speculative load was in flight on this RU");
        debug_assert_eq!(loaded, config);
        self.prefetch_completed += 1;
        self.prefetched[ru.idx()] = true;
        self.energy.record_prefetch();
        self.record(|| TraceEvent::PrefetchEnd {
            config,
            ru,
            at: now,
        });
    }

    /// Aborts the in-flight speculative load because a demand load
    /// needs the port *now*. The partially written RU returns to empty
    /// (and is usually the demand load's own target one line later).
    pub(crate) fn cancel_prefetch(&mut self, now: SimTime) {
        let op = self.controller.cancel(now);
        let discarded = self
            .pool
            .cancel_load(op.ru)
            .expect("speculative load was in flight on this RU");
        debug_assert_eq!(discarded, op.config);
        debug_assert!(matches!(
            self.pending_reconfig,
            Some((_, ru, ReconfigKind::Speculative(_))) if ru == op.ru
        ));
        self.pending_reconfig = None;
        self.prefetch_cancelled += 1;
        self.record(|| TraceEvent::PrefetchCancel {
            config: op.config,
            ru: op.ru,
            at: now,
        });
    }

    /// Bookkeeping for any eviction (demand or speculative): a resident
    /// that was prefetched and never claimed is now provably wasted.
    pub(crate) fn note_eviction(&mut self, ru: RuId) {
        if self.prefetched[ru.idx()] {
            self.prefetched[ru.idx()] = false;
            self.prefetch_wasted += 1;
        }
    }

    /// Bookkeeping for a reuse claim: a claim on a still-speculative
    /// resident is a prefetch hit (the hidden load latency the planner
    /// bought).
    pub(crate) fn note_claim(&mut self, ru: RuId) {
        if self.prefetched[ru.idx()] {
            self.prefetched[ru.idx()] = false;
            self.prefetch_hits += 1;
        }
    }
}
