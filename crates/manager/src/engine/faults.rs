//! Deterministic fault injection and recovery.
//!
//! An active [`FaultPlan`](crate::FaultPlan) threads three hardware
//! fault classes through the engine, each drawn from a SplitMix64
//! stream seeded by the plan (never wall-clock), so every run — fresh,
//! pooled, or replayed — sees the identical fault schedule:
//!
//! * **Transient load corruption** — a completed reconfiguration
//!   (demand or speculative) fails its integrity check. The checker is
//!   real: the runtime fetches the configuration's synthetic bitstream,
//!   flips one byte and verifies the Fletcher checksum catches it. The
//!   load is retried with exponential backoff (attempt *k* waits
//!   `latency × 2^(k−1)` before rewriting); a speculative retry stays
//!   cancellable by demand, including for free during the backoff wait.
//!   Exhausting the retry budget condemns the unit (persistent port or
//!   cell damage is indistinguishable from bad luck at that point) and
//!   re-queues the demanded task for placement elsewhere.
//! * **Resident upsets** — an SEU silently flips a resident, unclaimed
//!   configuration. Residency stops counting it reusable, so the next
//!   request misses and the rewrite repairs the unit lazily.
//! * **RU hard faults** — a unit dies outright. In-flight execution is
//!   revoked through the same token machinery preemption uses, the
//!   task re-queues on the recovery lane, and the unit is quarantined
//!   out of the pool — healing after the plan's repair latency, if one
//!   is configured.
//!
//! With the default [`FaultPlan::off`](crate::FaultPlan::off) none of
//! this code runs and the engine stays bit-exact with the fault-free
//! golden outputs.

use super::{ActiveJob, Event, ManagerState, ReconfigKind, PRIO_RU_HEAL};
use crate::policy::ReplacementPolicy;
use crate::trace::{FaultKind, TraceEvent};
use rtr_hw::bitstream;
use rtr_hw::{BitstreamRepository, LoadLane, RuId, RuState};
use rtr_sim::{SimDuration, SimTime};
use rtr_taskgraph::{ConfigId, NodeId};

/// Size of the synthetic bitstreams the fault runtime verifies. The
/// integrity check needs *a* real data path, not device-sized blobs.
const FAULT_REPO_BYTES: usize = 256;

/// Per-run fault state: the deterministic draw stream, the retry
/// counter of the single in-flight load, the degradation clock and the
/// fault ledger that [`outcome`](crate::Engine::outcome) folds into
/// [`FaultStats`](crate::FaultStats).
#[derive(Debug, Default)]
pub(crate) struct FaultRuntime {
    /// SplitMix64 state, reseeded from the plan at every run start.
    rng: u64,
    /// Attempts of the in-flight load so far (0 = first try pending).
    pub(crate) load_attempts: u8,
    /// When the pool entered its current degraded (≥ 1 quarantined)
    /// stretch, if it is in one.
    pub(crate) degraded_since: Option<SimTime>,
    /// Closed degraded stretches accumulated so far this run.
    pub(crate) degraded: SimDuration,
    pub(crate) injected: u64,
    pub(crate) retries: u64,
    pub(crate) repairs: u64,
    pub(crate) quarantines: u64,
    pub(crate) heals: u64,
    pub(crate) lost_work: SimDuration,
    /// Lazily built bitstream store backing the integrity checks.
    /// Survives reseeds — blobs are a pure function of the config id.
    repo: Option<BitstreamRepository>,
}

impl FaultRuntime {
    /// A fresh runtime for a plan seeded with `seed`.
    pub(crate) fn seeded(seed: u64) -> Self {
        let mut f = FaultRuntime::default();
        f.reseed(seed);
        f
    }

    /// Re-arms the runtime for a new run of a plan seeded with `seed`.
    pub(crate) fn reseed(&mut self, seed: u64) {
        self.rng = seed;
        self.load_attempts = 0;
        self.degraded_since = None;
        self.degraded = SimDuration::ZERO;
        self.injected = 0;
        self.retries = 0;
        self.repairs = 0;
        self.quarantines = 0;
        self.heals = 0;
        self.lost_work = SimDuration::ZERO;
    }

    /// Next draw of the SplitMix64 stream.
    fn next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Per-mille Bernoulli draw; consumes no stream state when the
    /// class is disabled.
    pub(crate) fn roll(&mut self, pm: u16) -> bool {
        pm > 0 && self.next() % 1000 < u64::from(pm)
    }

    /// Draws whether the just-completed transfer of `config` came back
    /// corrupt — and when it did, actually corrupts a copy of the
    /// bitstream and proves the checksum catches it.
    pub(crate) fn transfer_corrupt(&mut self, pm: u16, config: ConfigId) -> bool {
        if !self.roll(pm) {
            return false;
        }
        let salt = self.next();
        let repo = self
            .repo
            .get_or_insert_with(|| BitstreamRepository::new(FAULT_REPO_BYTES));
        let golden = repo.expected_checksum(config);
        let bad = bitstream::corrupt(&repo.fetch(config), salt);
        let detected = !bitstream::verify(&bad, golden);
        debug_assert!(detected, "a one-byte flip must fail the checksum");
        detected
    }
}

/// Re-queues `node` on its job's recovery lane (kept in
/// reconfiguration-sequence order) after its placement was lost to a
/// fault, forgetting the placement.
fn requeue(job: &mut ActiveJob, node: NodeId) {
    let n = node.idx();
    debug_assert!(!job.done[n], "completed work cannot be lost");
    job.loaded[n] = false;
    job.exec_started[n] = false;
    job.node_ru[n] = None;
    let at = {
        let seq = &job.tpl.rec_seq;
        let pos = |x: NodeId| seq.iter().position(|&s| s.idx() == x.idx());
        let mine = pos(node);
        job.replaced
            .iter()
            .position(|&r| pos(r) > mine)
            .unwrap_or(job.replaced.len())
    };
    job.replaced.insert(at, node);
}

impl ManagerState {
    /// Handles a corrupt *demand* load completion of `config` into
    /// `ru` for `node`: re-arm a backoff retry on the port, or give up,
    /// quarantine the unit and re-queue the task for placement
    /// elsewhere.
    pub(crate) fn fault_demand_corrupt<P: ReplacementPolicy + ?Sized>(
        &mut self,
        ru: RuId,
        node: NodeId,
        config: ConfigId,
        now: SimTime,
        policy: &mut P,
    ) {
        self.faults.injected += 1;
        self.record(|| TraceEvent::FaultInject {
            kind: FaultKind::TransientLoad,
            ru,
            config: Some(config),
            at: now,
        });
        self.faults.load_attempts += 1;
        let attempt = self.faults.load_attempts;
        if attempt <= self.cfg.faults.max_retries {
            let backoff = self.controller.latency() * (1u64 << (attempt - 1));
            let completes = self
                .controller
                .start_retry(ru, config, now, LoadLane::Demand, backoff);
            // The rewrite moves the full bitstream again.
            self.energy.record_load();
            self.faults.retries += 1;
            self.record(|| TraceEvent::FaultRetry {
                ru,
                config,
                attempt,
                until: completes,
                at: now,
            });
            self.pending_reconfig = Some((completes, ru, ReconfigKind::Demand(node)));
            return;
        }
        self.faults.load_attempts = 0;
        self.record(|| TraceEvent::FaultGiveUp {
            ru,
            config,
            attempts: attempt,
            at: now,
        });
        self.pool
            .cancel_load(ru)
            .expect("the abandoned load was in flight on this RU");
        let job = self
            .current
            .as_mut()
            .expect("demand loads belong to the current graph");
        requeue(job, node);
        self.fault_quarantine(ru, now);
        self.try_advance(now, policy);
    }

    /// Handles a corrupt *speculative* load completion: retry on the
    /// speculative lane (still cancellable by demand) or abandon the
    /// prefetch and quarantine the unit.
    pub(crate) fn fault_prefetch_corrupt<P: ReplacementPolicy + ?Sized>(
        &mut self,
        ru: RuId,
        config: ConfigId,
        now: SimTime,
        policy: &mut P,
    ) {
        self.faults.injected += 1;
        self.record(|| TraceEvent::FaultInject {
            kind: FaultKind::TransientLoad,
            ru,
            config: Some(config),
            at: now,
        });
        // The corrupt transfer still moved the bits over the bus.
        self.energy.record_prefetch();
        self.faults.load_attempts += 1;
        let attempt = self.faults.load_attempts;
        if attempt <= self.cfg.faults.max_retries {
            let backoff = self.controller.latency() * (1u64 << (attempt - 1));
            let completes =
                self.controller
                    .start_retry(ru, config, now, LoadLane::Speculative, backoff);
            self.faults.retries += 1;
            self.record(|| TraceEvent::FaultRetry {
                ru,
                config,
                attempt,
                until: completes,
                at: now,
            });
            self.pending_reconfig = Some((completes, ru, ReconfigKind::Speculative(config)));
            return;
        }
        self.faults.load_attempts = 0;
        self.record(|| TraceEvent::FaultGiveUp {
            ru,
            config,
            attempts: attempt,
            at: now,
        });
        self.pool
            .cancel_load(ru)
            .expect("the abandoned load was in flight on this RU");
        // Close the speculative ledger: issued = completed + cancelled.
        self.prefetch_cancelled += 1;
        self.record(|| TraceEvent::PrefetchCancel {
            config,
            ru,
            at: now,
        });
        self.fault_quarantine(ru, now);
        self.try_advance(now, policy);
    }

    /// Post-execution fault draws: one upset draw, then one hard-fault
    /// draw, both across the whole pool. Runs once per (non-stale)
    /// `EndOfExecution` after its normal processing.
    pub(crate) fn fault_post_exec<P: ReplacementPolicy + ?Sized>(
        &mut self,
        now: SimTime,
        policy: &mut P,
    ) {
        let plan = self.cfg.faults;
        if self.faults.roll(plan.upset_pm) {
            let draw = self.faults.next();
            let victim = pick_ru(draw, self.pool.len(), |r| {
                self.pool.state(r).is_eviction_candidate() && !self.pool.is_corrupt(r)
            });
            if let Some(ru) = victim {
                let config = self
                    .pool
                    .mark_corrupt(ru)
                    .expect("upset victims are loaded and unclaimed");
                // A speculative resident dies unclaimed — provably waste.
                self.note_eviction(ru);
                self.faults.injected += 1;
                self.record(|| TraceEvent::FaultInject {
                    kind: FaultKind::Upset,
                    ru,
                    config: Some(config),
                    at: now,
                });
            }
        }
        if self.faults.roll(plan.ru_fault_pm) {
            let draw = self.faults.next();
            let victim = pick_ru(draw, self.pool.len(), |r| {
                !matches!(
                    self.pool.state(r),
                    RuState::Loading { .. } | RuState::Quarantined
                )
            });
            if let Some(ru) = victim {
                self.fault_kill_ru(ru, now);
                if self.current.is_some() {
                    self.try_advance(now, policy);
                }
            }
        }
    }

    /// An RU dies: revoke whatever ran on it, re-queue the lost task on
    /// the recovery lane, quarantine the unit.
    pub(crate) fn fault_kill_ru(&mut self, ru: RuId, now: SimTime) {
        let state = self.pool.state(ru);
        self.faults.injected += 1;
        self.record(|| TraceEvent::FaultInject {
            kind: FaultKind::RuHard,
            ru,
            config: state.resident_config(),
            at: now,
        });
        match state {
            RuState::Executing { .. } => {
                self.pool
                    .revoke_execution(ru)
                    .expect("revoking the killed unit's execution");
                self.exec_token[ru.idx()] += 1;
            }
            RuState::Loaded { claimed: true, .. } => {
                self.pool
                    .release_claim(ru)
                    .expect("releasing the killed unit's claim");
            }
            _ => {}
        }
        // Any live placement of the current graph on this unit is lost;
        // elapsed execution is charged as lost work and the task
        // re-queues for recovery placement. Suspended graphs hold no
        // placements (released at suspension).
        if let Some(mut job) = self.current.take() {
            if let Some(node) = (0..job.node_ru.len())
                .find(|&n| job.node_ru[n] == Some(ru) && !job.done[n])
                .map(|n| NodeId(n as u32))
            {
                if job.exec_started[node.idx()] {
                    self.faults.lost_work += now.since(job.exec_start[node.idx()]);
                }
                requeue(&mut job, node);
            }
            self.current = Some(job);
        }
        self.fault_quarantine(ru, now);
    }

    /// Removes `ru` from service: quarantines it in the pool, opens the
    /// degradation clock when it is the first unit out, and schedules
    /// the heal when the plan repairs units.
    pub(crate) fn fault_quarantine(&mut self, ru: RuId, now: SimTime) {
        // An unclaimed prefetched resident dies with the unit.
        self.note_eviction(ru);
        self.pool
            .quarantine(ru)
            .expect("quarantine victims are empty or unclaimed");
        self.faults.quarantines += 1;
        self.record(|| TraceEvent::RuQuarantine { ru, at: now });
        if self.pool.quarantined_count() == 1 {
            self.faults.degraded_since = Some(now);
        }
        if let Some(repair) = self.cfg.faults.repair_latency {
            self.queue
                .push(now + repair, PRIO_RU_HEAL, Event::RuHeal { ru });
        }
    }

    /// A quarantined unit finished its repair: rejoin the pool empty,
    /// close the degradation clock when it was the last unit out, and
    /// let a stalled demand path use the fresh capacity.
    pub(crate) fn fault_heal<P: ReplacementPolicy + ?Sized>(
        &mut self,
        ru: RuId,
        now: SimTime,
        policy: &mut P,
    ) {
        self.pool
            .heal(ru)
            .expect("heal events target quarantined units");
        self.faults.heals += 1;
        self.record(|| TraceEvent::RuHeal { ru, at: now });
        if self.pool.quarantined_count() == 0 {
            if let Some(since) = self.faults.degraded_since.take() {
                self.faults.degraded += now.since(since);
            }
        }
        if self.current.is_some() {
            self.try_advance(now, policy);
        }
    }

    /// Total degraded-pool time, closing a still-open stretch at `end`.
    pub(crate) fn fault_degraded_time(&self, end: SimTime) -> SimDuration {
        match self.faults.degraded_since {
            Some(since) => self.faults.degraded + end.saturating_since(since),
            None => self.faults.degraded,
        }
    }
}

/// Uniform pick (via `draw`) among the RUs satisfying `keep`, or `None`
/// when none does. Two passes, no allocation — fault draws are rare.
fn pick_ru(draw: u64, pool_len: usize, keep: impl Fn(RuId) -> bool) -> Option<RuId> {
    let ids = || (0..pool_len as u16).map(RuId).filter(|&r| keep(r));
    let n = ids().count();
    if n == 0 {
        return None;
    }
    ids().nth((draw % n as u64) as usize)
}
