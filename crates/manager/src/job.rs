//! Jobs: task-graph instances submitted to the manager.

use crate::qos::QosClass;
use rtr_sim::SimTime;
use rtr_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identity of the tenant a job is submitted on behalf of.
///
/// Tenants exist at the fleet layer (admission control, per-tenant
/// quotas and ledgers); the single-device [`Engine`](crate::Engine)
/// ignores the field entirely, so a workload where every job carries
/// the default tenant is byte-identical to the pre-fleet engine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The default tenant every pre-fleet job belongs to.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One application instance submitted to the streaming
/// [`Engine`](crate::Engine) (or, in batch form, to
/// [`crate::simulate`]).
///
/// The same `Arc<TaskGraph>` is typically shared by many instances
/// (e.g. 500 random picks from three templates); design-time artifacts
/// (reconfiguration sequence, configuration sequence) are computed once
/// per distinct template inside the simulator.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The task graph to execute.
    pub graph: Arc<TaskGraph>,
    /// When the job enters the manager's online queue. Jobs become
    /// eligible for activation (and visible to the replacement module's
    /// Dynamic List) only from this instant on. The default of
    /// [`SimTime::ZERO`] reproduces the paper's batch setting where the
    /// whole sequence is known up front.
    pub arrival: SimTime,
    /// Per-node *mobility* values from the design-time phase (aligned
    /// with node ids). Required for Skip Events to have any effect.
    pub mobility: Option<Arc<Vec<u32>>>,
    /// Per-node *forced delays* (aligned with node ids): before loading
    /// node `n`, skip exactly `forced_delays[n]` events. Only used by
    /// the design-time mobility calculation (the paper's Fig. 6), which
    /// probes schedules with individual tasks delayed.
    pub forced_delays: Option<Arc<Vec<u32>>>,
    /// Scheduling class: lane priority plus an optional deadline. The
    /// default best-effort class reproduces the pre-QoS FIFO engine.
    pub qos: QosClass,
    /// Tenant the job is submitted on behalf of. Only the fleet layer
    /// (admission control, quotas, per-tenant ledgers) reads it; the
    /// engine itself is tenant-agnostic, so the default tenant
    /// reproduces the pre-fleet behaviour exactly.
    pub tenant: TenantId,
}

impl JobSpec {
    /// A plain job with no annotations, arriving at time zero.
    pub fn new(graph: Arc<TaskGraph>) -> Self {
        JobSpec {
            graph,
            arrival: SimTime::ZERO,
            mobility: None,
            forced_delays: None,
            qos: QosClass::default(),
            tenant: TenantId::DEFAULT,
        }
    }

    /// Sets the job's QoS class (builder style).
    pub fn with_qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Sets the submitting tenant (builder style).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the arrival instant (builder style).
    pub fn with_arrival(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Attaches design-time mobility values.
    ///
    /// # Panics
    /// Panics if the vector length does not match the node count.
    pub fn with_mobility(mut self, mobility: Arc<Vec<u32>>) -> Self {
        assert_eq!(
            mobility.len(),
            self.graph.len(),
            "mobility annotation length must match node count"
        );
        self.mobility = Some(mobility);
        self
    }

    /// Attaches forced per-node delays (mobility-calculation probes).
    ///
    /// # Panics
    /// Panics if the vector length does not match the node count.
    pub fn with_forced_delays(mut self, delays: Arc<Vec<u32>>) -> Self {
        assert_eq!(
            delays.len(),
            self.graph.len(),
            "forced-delay annotation length must match node count"
        );
        self.forced_delays = Some(delays);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;

    #[test]
    fn annotations_attach() {
        let g = Arc::new(benchmarks::jpeg());
        let job = JobSpec::new(Arc::clone(&g))
            .with_mobility(Arc::new(vec![0, 1, 2, 0]))
            .with_forced_delays(Arc::new(vec![0, 0, 1, 0]));
        assert_eq!(job.mobility.as_ref().unwrap().len(), 4);
        assert_eq!(job.forced_delays.as_ref().unwrap()[2], 1);
    }

    #[test]
    fn default_qos_is_best_effort_and_builder_attaches() {
        let g = Arc::new(benchmarks::jpeg());
        let job = JobSpec::new(Arc::clone(&g));
        assert!(job.qos.is_default());
        let urgent =
            JobSpec::new(g).with_qos(QosClass::priority(4).with_deadline(SimTime::from_ms(80)));
        assert_eq!(urgent.qos.priority, 4);
        assert_eq!(urgent.qos.deadline, Some(SimTime::from_ms(80)));
    }

    #[test]
    fn default_tenant_is_zero_and_builder_attaches() {
        let g = Arc::new(benchmarks::jpeg());
        let job = JobSpec::new(Arc::clone(&g));
        assert_eq!(job.tenant, TenantId::DEFAULT);
        let tenanted = JobSpec::new(g).with_tenant(TenantId(7));
        assert_eq!(tenanted.tenant, TenantId(7));
        assert_eq!(TenantId(7).to_string(), "t7");
    }

    #[test]
    fn default_arrival_is_time_zero() {
        let g = Arc::new(benchmarks::jpeg());
        let job = JobSpec::new(Arc::clone(&g));
        assert_eq!(job.arrival, SimTime::ZERO);
        let late = JobSpec::new(g).with_arrival(SimTime::from_ms(25));
        assert_eq!(late.arrival, SimTime::from_ms(25));
    }

    #[test]
    #[should_panic(expected = "mobility annotation length")]
    fn wrong_mobility_length_panics() {
        let g = Arc::new(benchmarks::jpeg());
        let _ = JobSpec::new(g).with_mobility(Arc::new(vec![0]));
    }

    #[test]
    #[should_panic(expected = "forced-delay annotation length")]
    fn wrong_delay_length_panics() {
        let g = Arc::new(benchmarks::jpeg());
        let _ = JobSpec::new(g).with_forced_delays(Arc::new(vec![0, 0]));
    }
}
