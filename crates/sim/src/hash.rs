//! A fast, deterministic hasher for simulation-internal maps.
//!
//! The engine's hot path is dominated by small-key hash lookups:
//! per-configuration occurrence lists in the reuse index, per-config
//! touch history in the policies, template interning. `std`'s default
//! SipHash is DoS-resistant but costs tens of nanoseconds per 4-byte
//! key — an order of magnitude more than the multiply-xor scheme below
//! (the well-known FxHash used by rustc). None of these maps are keyed
//! by attacker-controlled data, so the collision-resistance trade-off
//! is free.
//!
//! The hasher is fully deterministic (no per-process random state),
//! which also removes a source of run-to-run iteration-order
//! divergence; note the simulator never iterates these maps in a way
//! that affects results, so this is a debugging nicety, not a
//! correctness requirement.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (a truncation of the golden
/// ratio), chosen to spread consecutive small integers across the
/// table.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-xor hasher.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8-byte chunks, then the tail; good enough for the short
        // keys the simulator uses (ids and small tuples).
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_with_u32_keys() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for i in 0..1_000u32 {
            m.insert(i, u64::from(i) * 3);
        }
        assert_eq!(m.len(), 1_000);
        for i in 0..1_000u32 {
            assert_eq!(m.get(&i), Some(&(u64::from(i) * 3)));
        }
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        use std::hash::BuildHasher;
        let a = FxBuildHasher::default();
        let b = FxBuildHasher::default();
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(a.hash_one(key), b.hash_one(key));
        }
    }

    #[test]
    fn distinct_small_keys_spread() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for key in 0u32..512 {
            seen.insert(b.hash_one(key));
        }
        assert_eq!(seen.len(), 512, "no collisions on consecutive ids");
    }

    #[test]
    fn byte_slices_hash_tail_correctly() {
        use std::hash::Hasher;
        let mut a = FxHasher::default();
        a.write(b"hello world, 13");
        let mut b = FxHasher::default();
        b.write(b"hello world, 14");
        assert_ne!(a.finish(), b.finish());
    }
}
