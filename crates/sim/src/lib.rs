//! Discrete-event simulation kernel for the `reconfig-reuse` workspace.
//!
//! This crate is deliberately small and dependency-free (besides `serde`):
//! it provides the three ingredients every layer above builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — fixed-point simulation time in
//!   microseconds. The paper works in milliseconds with fractional values
//!   (e.g. task execution times of 2.5 ms in its Fig. 2), so an integer
//!   microsecond base avoids all floating-point comparison hazards while
//!   representing every quantity in the paper exactly.
//! * [`EventQueue`] — a deterministic priority queue. Two events at the
//!   same timestamp are ordered by an explicit priority class and then by
//!   insertion sequence number, so simulations are exactly reproducible.
//! * [`gantt`] — a small ASCII Gantt-chart renderer used by the example
//!   binaries to draw schedules the way the paper's figures do.
//! * [`hash`] — a deterministic fast hasher ([`FxHashMap`]) for the
//!   simulator's small-key hot-path maps, where SipHash's DoS
//!   resistance buys nothing and costs an order of magnitude.

pub mod dense;
pub mod gantt;
pub mod hash;
pub mod queue;
pub mod time;

pub use dense::DenseIdMap;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use queue::{EventQueue, QueuedEvent};
pub use time::{SimDuration, SimTime};
