//! A dense map keyed by small integer ids, with a hash spill.
//!
//! The simulator's hottest maps are keyed by configuration ids, which
//! real workloads draw from a small dense range (benchmark suites
//! number their bitstreams from 1) — for those, even a fast hash map
//! pays a multiply-probe where one array index suffices. [`DenseIdMap`]
//! stores values for ids below a fixed bound (2¹⁶) in a plain `Vec`
//! (grown on demand to the largest id seen) and spills ids of 65536 and
//! above — this file's tests use 70 000+ — to an [`FxHashMap`], so
//! correctness never depends on the id range. One implementation serves
//! the reuse-index
//! occurrence lists, the policies' touch stamps and the RU pool's
//! residency masks.

use crate::hash::FxHashMap;

/// Ids below this bound live in the dense table; anything above spills
/// to the hash map. 2¹⁶ slots of a small `V` is a bounded worst case
/// while covering every realistic id scheme densely.
const DENSE_IDS: u32 = 1 << 16;

/// Dense-by-id storage with hash spill (see module docs). Values are
/// created on first [`entry`](DenseIdMap::entry) access via `Default`;
/// [`clear_values`](DenseIdMap::clear_values) resets contents while
/// keeping every allocation, which is what the pooled engine's reset
/// path wants.
#[derive(Debug, Clone, Default)]
pub struct DenseIdMap<V> {
    dense: Vec<V>,
    spill: FxHashMap<u32, V>,
}

impl<V: Default> DenseIdMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        DenseIdMap {
            dense: Vec::new(),
            spill: FxHashMap::default(),
        }
    }

    /// The value for `id`, creating a default one if absent.
    pub fn entry(&mut self, id: u32) -> &mut V {
        if id < DENSE_IDS {
            let idx = id as usize;
            if idx >= self.dense.len() {
                self.dense.resize_with(idx + 1, V::default);
            }
            &mut self.dense[idx]
        } else {
            self.spill.entry(id).or_default()
        }
    }

    /// The value for `id`, if one was ever created. Dense ids may
    /// return a default-valued slot created by a neighbouring `entry`;
    /// callers treat default values as "absent" (a zero stamp, an empty
    /// list, an empty mask), which makes the two indistinguishable.
    pub fn get(&self, id: u32) -> Option<&V> {
        if id < DENSE_IDS {
            self.dense.get(id as usize)
        } else {
            self.spill.get(&id)
        }
    }

    /// Applies `reset` to every stored value (dense and spill), keeping
    /// all allocations — the pooled-reset hook.
    pub fn clear_values(&mut self, mut reset: impl FnMut(&mut V)) {
        for v in &mut self.dense {
            reset(v);
        }
        for v in self.spill.values_mut() {
            reset(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_spill_round_trip() {
        let mut m: DenseIdMap<u64> = DenseIdMap::new();
        *m.entry(3) = 30;
        *m.entry(70_000) = 700; // above the dense bound
        assert_eq!(m.get(3), Some(&30));
        assert_eq!(m.get(70_000), Some(&700));
        assert_eq!(m.get(70_001), None);
        // A dense neighbour slot exists but holds the default.
        assert_eq!(m.get(2), Some(&0));
    }

    #[test]
    fn clear_values_resets_but_keeps_slots() {
        let mut m: DenseIdMap<Vec<u32>> = DenseIdMap::new();
        m.entry(5).push(1);
        m.entry(90_000).push(2);
        m.clear_values(Vec::clear);
        assert!(m.get(5).unwrap().is_empty());
        assert!(m.get(90_000).unwrap().is_empty());
    }
}
