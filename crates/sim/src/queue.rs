//! Deterministic event queue.
//!
//! The execution manager reproduced in this workspace is *event
//! triggered*: every scheduling action happens at a discrete event
//! (`new_task_graph`, `end_of_reconfiguration`, `reused_task`,
//! `end_of_execution`). Several events frequently coincide — e.g. in the
//! paper's Fig. 2 a task graph finishes at t = 16 ms at the same instant a
//! reconfiguration completes — and the outcome depends on the order they
//! are handled in. To make simulations exactly reproducible the queue
//! orders events by `(time, priority class, insertion sequence)`.

use std::cmp::Ordering;

use crate::time::SimTime;

/// An event plus the bookkeeping that fixes its position in the total
/// order of the simulation.
#[derive(Debug, Clone)]
pub struct QueuedEvent<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Priority class: lower fires first among events at the same time.
    pub priority: u8,
    /// Insertion sequence number: breaks remaining ties FIFO.
    pub seq: u64,
    /// The caller's payload.
    pub payload: T,
}

impl<T> PartialEq for QueuedEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for QueuedEvent<T> {}

impl<T> QueuedEvent<T> {
    #[inline]
    fn key(&self) -> (SimTime, u8, u64) {
        (self.time, self.priority, self.seq)
    }

    /// The key packed into one `u128` — `time` in the high 64 bits,
    /// priority above a 56-bit sequence number in the low word — so the
    /// sort-order comparisons of the hot push path are a single integer
    /// compare. 2⁵⁶ insertions per queue lifetime is far beyond any
    /// simulation here (a debug assertion in `push` guards it).
    #[inline]
    fn packed_key(&self) -> u128 {
        pack_key(self.time, self.priority, self.seq)
    }
}

#[inline]
fn pack_key(time: SimTime, priority: u8, seq: u64) -> u128 {
    ((time.as_us() as u128) << 64) | ((priority as u128) << 56) | (seq as u128)
}

impl<T> PartialOrd for QueuedEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for QueuedEvent<T> {
    /// Reversed (earliest key = greatest) so min-priority pops come
    /// from the cheap end of the backing store.
    fn cmp(&self, other: &Self) -> Ordering {
        other.packed_key().cmp(&self.packed_key())
    }
}

/// A deterministic min-priority event queue.
///
/// Events pop in `(time, priority, insertion order)` order. The queue also
/// enforces the monotonicity invariant of discrete-event simulation: it is
/// a logic error (checked in debug builds) to schedule an event earlier
/// than the last popped time.
///
/// **Representation.** The backing store is a `Vec` kept sorted by key
/// descending, so `pop` is an O(1) `Vec::pop` and `push` is a binary
/// search plus an insertion shift. The execution manager keeps this
/// queue *shallow* — pending arrivals live in the engine's sorted lane,
/// so only in-flight events (bounded by the RU count) are ever queued —
/// and at those depths the sorted Vec beats a binary heap: no sift
/// branching on pop, and insertion shifts of a handful of small structs
/// are a single `memmove`. Deep queues (thousands of simultaneous
/// pending events) would pay O(n) per insertion and should use a heap
/// instead.
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Pending events, sorted by key descending (next event last), each
    /// carrying its packed key so ordering probes are one integer load.
    events: Vec<(u128, QueuedEvent<T>)>,
    next_seq: u64,
    last_popped: SimTime,
    popped_any: bool,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            events: Vec::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
            popped_any: false,
        }
    }

    /// Creates an empty queue whose heap can hold `capacity` events
    /// before reallocating — pre-size for the expected backlog of a
    /// batch run.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            events: Vec::with_capacity(capacity),
            next_seq: 0,
            last_popped: SimTime::ZERO,
            popped_any: false,
        }
    }

    /// Number of events the store can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Empties the queue *and* re-arms its ordering invariants, keeping
    /// the heap allocation: after `clear` the queue is observationally
    /// identical to a fresh [`EventQueue::new`] — the insertion-sequence
    /// counter restarts at 0 (so same-time/same-priority ties replay in
    /// the same order as a fresh run) and the monotonicity clock resets
    /// to [`SimTime::ZERO`] (so events at any time may be scheduled
    /// again). This is what makes pooled engine runs bit-exact with
    /// fresh-engine runs.
    pub fn clear(&mut self) {
        self.events.clear();
        self.next_seq = 0;
        self.last_popped = SimTime::ZERO;
        self.popped_any = false;
    }

    /// Advances the monotonicity clock to `time` without popping — used
    /// when the owner processes a same-stream event that is not stored
    /// in this queue (e.g. the engine's sorted arrival lane), so later
    /// `push`es are still checked against true simulation time.
    ///
    /// # Panics
    /// In debug builds, panics if `time` precedes the current clock.
    pub fn advance_to(&mut self, time: SimTime) {
        debug_assert!(
            !self.popped_any || time >= self.last_popped,
            "EventQueue: advance_to({time}) before current time {}",
            self.last_popped
        );
        self.last_popped = time;
        self.popped_any = true;
    }

    /// Schedules `payload` at `time` with priority class `priority`
    /// (lower = earlier among same-time events).
    pub fn push(&mut self, time: SimTime, priority: u8, payload: T) {
        debug_assert!(
            !self.popped_any || time >= self.last_popped,
            "EventQueue: scheduled event at {time} before current time {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        debug_assert!(seq < 1 << 56, "sequence space exhausted");
        let ev = QueuedEvent {
            time,
            priority,
            seq,
            payload,
        };
        // Keep the store sorted by key descending: everything with a
        // *smaller* (earlier) key goes after the new event. Keys are
        // unique (the seq), so the position is unambiguous.
        let key = ev.packed_key();
        let at = self.events.partition_point(|&(k, _)| k > key);
        self.events.insert(at, (key, ev));
    }

    /// Removes and returns the next event in deterministic order.
    pub fn pop(&mut self) -> Option<QueuedEvent<T>> {
        let (_, ev) = self.events.pop()?;
        self.last_popped = ev.time;
        self.popped_any = true;
        Some(ev)
    }

    /// Drains every queued event sharing the head's `(time, priority)`
    /// into `out` in deterministic (insertion) order, returning that
    /// shared `(time, priority)` — or `None` on an empty queue.
    ///
    /// Events pushed *while the batch is being handled* are not part of
    /// it: they carry later sequence numbers and would have popped after
    /// every pre-existing same-key event anyway, so handling the drained
    /// batch then re-merging preserves the one-at-a-time total order.
    /// `out` is appended to, not cleared — callers own the scratch
    /// buffer.
    pub fn pop_same_instant_into(&mut self, out: &mut Vec<T>) -> Option<(SimTime, u8)> {
        let (_, head) = self.events.last()?;
        let (time, priority) = (head.time, head.priority);
        while let Some((_, e)) = self.events.last() {
            if e.time != time || e.priority != priority {
                break;
            }
            let (_, e) = self.events.pop().expect("peeked event vanished");
            out.push(e.payload);
        }
        self.last_popped = time;
        self.popped_any = true;
        Some((time, priority))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.events.last().map(|(_, e)| e.time)
    }

    /// The full ordering key `(time, priority, seq)` of the next event
    /// without removing it — lets an owner merge this queue with an
    /// external sorted lane under the queue's own total order.
    pub fn peek_key(&self) -> Option<(SimTime, u8, u64)> {
        self.events.last().map(|(_, e)| e.key())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5), 0, "b");
        q.push(SimTime::from_ms(1), 0, "a");
        q.push(SimTime::from_ms(9), 0, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_ordered_by_priority_then_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(3);
        q.push(t, 2, "low-prio-first-inserted");
        q.push(t, 0, "high-prio");
        q.push(t, 2, "low-prio-second-inserted");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(
            order,
            vec![
                "high-prio",
                "low-prio-first-inserted",
                "low-prio-second-inserted"
            ]
        );
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(2), 0, ());
        q.push(SimTime::from_ms(7), 0, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(2));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(7));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 0, 1u32);
        q.push(SimTime::ZERO, 0, 2u32);
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(4), 1, 'x');
        q.push(SimTime::from_ms(4), 0, 'y');
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(4)));
        assert_eq!(q.pop().unwrap().payload, 'y');
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn push_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5), 0, ());
        q.pop();
        q.push(SimTime::from_ms(1), 0, ());
    }

    #[test]
    fn with_capacity_presizes_heap() {
        let q: EventQueue<u32> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_rearms_invariants_and_keeps_capacity() {
        let mut q = EventQueue::new();
        for i in 0..32u64 {
            q.push(SimTime::from_ms(10 + i), 0, i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.now(), SimTime::from_ms(41));
        let cap = q.capacity();
        q.clear();
        assert!(cap > 0 && q.capacity() == cap, "store allocation survives");
        assert_eq!(q.now(), SimTime::ZERO, "monotonicity clock re-armed");
        // Scheduling before the old clock is legal again, and the seq
        // counter restarted: same-key ties replay in insertion order
        // exactly as on a fresh queue.
        let t = SimTime::from_ms(1);
        q.push(t, 0, 100u64);
        q.push(t, 0, 200u64);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![100, 200]);
    }

    #[test]
    fn cleared_queue_reassigns_seq_from_zero() {
        let mut a = EventQueue::new();
        a.push(SimTime::ZERO, 0, 'x');
        a.clear();
        a.push(SimTime::ZERO, 0, 'y');
        let fresh_seq = {
            let mut b = EventQueue::new();
            b.push(SimTime::ZERO, 0, 'y');
            b.pop().unwrap().seq
        };
        assert_eq!(a.pop().unwrap().seq, fresh_seq);
    }

    #[test]
    fn pop_same_instant_drains_only_the_head_key() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(4);
        q.push(t, 0, "a");
        q.push(t, 0, "b");
        q.push(t, 1, "later-prio");
        q.push(SimTime::from_ms(5), 0, "later-time");
        let mut batch = Vec::new();
        assert_eq!(q.pop_same_instant_into(&mut batch), Some((t, 0)));
        assert_eq!(batch, vec!["a", "b"], "insertion order within the batch");
        assert_eq!(q.now(), t);
        assert_eq!(q.len(), 2, "other keys untouched");
        assert_eq!(q.pop().unwrap().payload, "later-prio");
        let mut empty: EventQueue<u8> = EventQueue::new();
        assert_eq!(empty.pop_same_instant_into(&mut Vec::new()), None);
    }

    #[test]
    fn peek_key_exposes_total_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(4), 1, 'x');
        q.push(SimTime::from_ms(4), 0, 'y');
        assert_eq!(q.peek_key(), Some((SimTime::from_ms(4), 0, 1)));
    }

    #[test]
    fn advance_to_moves_now_without_pop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.advance_to(SimTime::from_ms(9));
        assert_eq!(q.now(), SimTime::from_ms(9));
        q.push(SimTime::from_ms(9), 0, 1);
        assert_eq!(q.pop().unwrap().time, SimTime::from_ms(9));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn advance_into_past_panics_in_debug() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(SimTime::from_ms(5), 0, 1);
        q.pop();
        q.advance_to(SimTime::from_ms(2));
    }
}
