//! Deterministic event queue.
//!
//! The execution manager reproduced in this workspace is *event
//! triggered*: every scheduling action happens at a discrete event
//! (`new_task_graph`, `end_of_reconfiguration`, `reused_task`,
//! `end_of_execution`). Several events frequently coincide — e.g. in the
//! paper's Fig. 2 a task graph finishes at t = 16 ms at the same instant a
//! reconfiguration completes — and the outcome depends on the order they
//! are handled in. To make simulations exactly reproducible the queue
//! orders events by `(time, priority class, insertion sequence)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event plus the bookkeeping that fixes its position in the total
/// order of the simulation.
#[derive(Debug, Clone)]
pub struct QueuedEvent<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Priority class: lower fires first among events at the same time.
    pub priority: u8,
    /// Insertion sequence number: breaks remaining ties FIFO.
    pub seq: u64,
    /// The caller's payload.
    pub payload: T,
}

impl<T> PartialEq for QueuedEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for QueuedEvent<T> {}

impl<T> QueuedEvent<T> {
    #[inline]
    fn key(&self) -> (SimTime, u8, u64) {
        (self.time, self.priority, self.seq)
    }
}

impl<T> PartialOrd for QueuedEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for QueuedEvent<T> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest*
    /// event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// A deterministic min-priority event queue.
///
/// Events pop in `(time, priority, insertion order)` order. The queue also
/// enforces the monotonicity invariant of discrete-event simulation: it is
/// a logic error (checked in debug builds) to schedule an event earlier
/// than the last popped time.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<QueuedEvent<T>>,
    next_seq: u64,
    last_popped: SimTime,
    popped_any: bool,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
            popped_any: false,
        }
    }

    /// Schedules `payload` at `time` with priority class `priority`
    /// (lower = earlier among same-time events).
    pub fn push(&mut self, time: SimTime, priority: u8, payload: T) {
        debug_assert!(
            !self.popped_any || time >= self.last_popped,
            "EventQueue: scheduled event at {time} before current time {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent {
            time,
            priority,
            seq,
            payload,
        });
    }

    /// Removes and returns the next event in deterministic order.
    pub fn pop(&mut self) -> Option<QueuedEvent<T>> {
        let ev = self.heap.pop();
        if let Some(ref e) = ev {
            self.last_popped = e.time;
            self.popped_any = true;
        }
        ev
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5), 0, "b");
        q.push(SimTime::from_ms(1), 0, "a");
        q.push(SimTime::from_ms(9), 0, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_ordered_by_priority_then_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(3);
        q.push(t, 2, "low-prio-first-inserted");
        q.push(t, 0, "high-prio");
        q.push(t, 2, "low-prio-second-inserted");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(
            order,
            vec![
                "high-prio",
                "low-prio-first-inserted",
                "low-prio-second-inserted"
            ]
        );
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(2), 0, ());
        q.push(SimTime::from_ms(7), 0, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(2));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(7));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 0, 1u32);
        q.push(SimTime::ZERO, 0, 2u32);
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(4), 1, 'x');
        q.push(SimTime::from_ms(4), 0, 'y');
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(4)));
        assert_eq!(q.pop().unwrap().payload, 'y');
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn push_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5), 0, ());
        q.pop();
        q.push(SimTime::from_ms(1), 0, ());
    }
}
