//! Fixed-point simulation time.
//!
//! All quantities in the reproduced paper are expressed in milliseconds,
//! sometimes with one fractional digit (Fig. 2 uses 2.5 ms execution
//! times). We store time as integer **microseconds** in a `u64`, which
//! represents every paper quantity exactly and gives ~584 000 years of
//! range — far beyond any simulation horizon.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock (microseconds since time zero).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulation time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Value in milliseconds as a float (for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self` (in every build
    /// profile — a reversed interval is always a logic error).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        match self.0.checked_sub(earlier.0) {
            Some(d) => SimDuration(d),
            None => panic!("SimTime::since: earlier ({earlier}) is after self ({self})"),
        }
    }

    /// Duration since `earlier`, clamping to zero instead of panicking.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Value in milliseconds as a float (for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Ratio of `self` to `denom` as a percentage (`NaN`-free: returns 0
    /// when `denom` is zero).
    #[inline]
    pub fn percent_of(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64 * 100.0
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: instant + duration exceeded u64 microseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: duration larger than instant"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// Formats as milliseconds with the minimal number of fractional digits.
fn fmt_ms(us: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let whole = us / 1_000;
    let frac = us % 1_000;
    if frac == 0 {
        write!(f, "{whole}ms")
    } else {
        let mut frac_str = format!("{frac:03}");
        while frac_str.ends_with('0') {
            frac_str.pop();
        }
        write!(f, "{whole}.{frac_str}ms")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ms(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ms(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_ms(4).as_us(), 4_000);
        assert_eq!(SimDuration::from_us(2_500).as_ms_f64(), 2.5);
        assert_eq!(SimTime::ZERO.as_us(), 0);
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t = SimTime::from_ms(10) + SimDuration::from_ms(4);
        assert_eq!(t, SimTime::from_ms(14));
        assert_eq!(t - SimTime::from_ms(4), SimDuration::from_ms(10));
        assert_eq!(t - SimDuration::from_ms(14), SimTime::ZERO);
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_ms(5);
        let b = SimTime::from_ms(8);
        assert_eq!(b.since(a), SimDuration::from_ms(3));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_ms(1).since(SimTime::from_ms(2));
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_ms(4) * 3, SimDuration::from_ms(12));
        assert_eq!(SimDuration::from_ms(9) / 2, SimDuration::from_us(4_500));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimDuration::from_ms(ms))
            .sum();
        assert_eq!(total, SimDuration::from_ms(6));
    }

    #[test]
    fn percent_of_handles_zero_denominator() {
        assert_eq!(SimDuration::from_ms(5).percent_of(SimDuration::ZERO), 0.0);
        let p = SimDuration::from_ms(1).percent_of(SimDuration::from_ms(4));
        assert!((p - 25.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_fractional_ms() {
        assert_eq!(SimTime::from_us(2_500).to_string(), "2.5ms");
        assert_eq!(SimTime::from_ms(74).to_string(), "74ms");
        assert_eq!(SimDuration::from_us(1_230).to_string(), "1.23ms");
        assert_eq!(SimDuration::from_us(7).to_string(), "0.007ms");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_us(999) < SimTime::from_ms(1));
        assert!(SimDuration::from_ms(2) > SimDuration::from_us(1_999));
    }

    #[test]
    fn serde_round_trip() {
        let t = SimTime::from_us(123_456);
        let s = serde_json::to_string(&t).unwrap();
        assert_eq!(s, "123456");
        let back: SimTime = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
    }
}
