//! ASCII Gantt-chart rendering.
//!
//! The paper's motivational figures (Figs. 2, 3 and 7) are Gantt charts of
//! reconfigurations and executions per reconfigurable unit. The example
//! binaries in this workspace render the simulated schedules in the same
//! style so they can be compared with the paper visually:
//!
//! ```text
//! RU1 |%%%%111111------------|
//! RU2 |....%%%%22222---------|
//! ```
//!
//! where `%` marks reconfiguration, digits/letters mark execution and `.`
//! marks idle time. The renderer is generic: callers provide labelled
//! rows of `[start, end)` segments with a fill glyph.

use crate::time::SimTime;
use std::fmt::Write as _;

/// One painted interval on a row.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// Glyph used to fill the interval.
    pub glyph: char,
}

impl Segment {
    /// Convenience constructor.
    pub fn new(start: SimTime, end: SimTime, glyph: char) -> Self {
        Segment { start, end, glyph }
    }
}

/// A labelled row (typically one reconfigurable unit).
#[derive(Debug, Clone, Default)]
pub struct Row {
    /// Row label, e.g. `"RU1"`.
    pub label: String,
    /// Painted intervals; later segments overwrite earlier ones where
    /// they overlap.
    pub segments: Vec<Segment>,
}

/// A chart: rows plus a time scale.
#[derive(Debug, Clone)]
pub struct GanttChart {
    rows: Vec<Row>,
    /// Simulation time represented by one output column.
    us_per_col: u64,
}

impl GanttChart {
    /// Creates a chart where each output column spans `us_per_col`
    /// microseconds (clamped to at least 1).
    pub fn new(us_per_col: u64) -> Self {
        GanttChart {
            rows: Vec::new(),
            us_per_col: us_per_col.max(1),
        }
    }

    /// Chart with one column per millisecond — the scale of the paper's
    /// figures.
    pub fn per_ms() -> Self {
        Self::new(1_000)
    }

    /// Adds a row and returns its index.
    pub fn add_row(&mut self, label: impl Into<String>) -> usize {
        self.rows.push(Row {
            label: label.into(),
            segments: Vec::new(),
        });
        self.rows.len() - 1
    }

    /// Paints `[start, end)` on row `row` with `glyph`.
    pub fn paint(&mut self, row: usize, start: SimTime, end: SimTime, glyph: char) {
        assert!(row < self.rows.len(), "gantt: row {row} out of bounds");
        assert!(start <= end, "gantt: segment start after end");
        self.rows[row]
            .segments
            .push(Segment::new(start, end, glyph));
    }

    /// Latest painted instant across all rows.
    pub fn horizon(&self) -> SimTime {
        self.rows
            .iter()
            .flat_map(|r| r.segments.iter())
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Renders the chart to a multi-line string, with a time axis footer.
    pub fn render(&self) -> String {
        let horizon = self.horizon();
        let cols = (horizon.as_us()).div_ceil(self.us_per_col) as usize;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.chars().count())
            .max()
            .unwrap_or(0);

        let mut out = String::new();
        for row in &self.rows {
            let mut cells = vec!['.'; cols];
            for seg in &row.segments {
                let c0 = (seg.start.as_us() / self.us_per_col) as usize;
                // End column: exclusive end, rounded up so sub-column
                // segments remain visible.
                let c1 = (seg.end.as_us().div_ceil(self.us_per_col) as usize).min(cols);
                for cell in &mut cells[c0..c1] {
                    *cell = seg.glyph;
                }
            }
            let _ = writeln!(
                out,
                "{:<label_w$} |{}|",
                row.label,
                cells.iter().collect::<String>()
            );
        }
        // Time axis: a tick every 10 columns.
        let mut axis = String::new();
        let mut ticks = String::new();
        let mut col = 0usize;
        while col <= cols {
            let t = SimTime::from_us(col as u64 * self.us_per_col);
            let mark = format!("{}", t.as_ms_f64());
            if axis.len() <= col {
                axis.push_str(&" ".repeat(col - axis.len()));
                axis.push('+');
                ticks.push_str(&" ".repeat(col.saturating_sub(ticks.len())));
                ticks.push_str(&mark);
            }
            col += 10;
        }
        let _ = writeln!(out, "{:<label_w$}  {}", "", axis);
        let _ = writeln!(out, "{:<label_w$}  {}", "t/ms", ticks);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_ms(x)
    }

    #[test]
    fn paints_segments_at_ms_scale() {
        let mut g = GanttChart::per_ms();
        let r = g.add_row("RU1");
        g.paint(r, ms(0), ms(4), '%');
        g.paint(r, ms(4), ms(8), '1');
        let s = g.render();
        let first = s.lines().next().unwrap();
        assert!(first.contains("RU1"), "{s}");
        assert!(first.contains("%%%%1111"), "{s}");
    }

    #[test]
    fn later_segments_overwrite() {
        let mut g = GanttChart::per_ms();
        let r = g.add_row("RU1");
        g.paint(r, ms(0), ms(4), 'a');
        g.paint(r, ms(2), ms(4), 'b');
        let s = g.render();
        assert!(s.lines().next().unwrap().contains("aabb"), "{s}");
    }

    #[test]
    fn horizon_is_max_end() {
        let mut g = GanttChart::per_ms();
        let a = g.add_row("A");
        let b = g.add_row("B");
        g.paint(a, ms(0), ms(5), 'x');
        g.paint(b, ms(3), ms(9), 'y');
        assert_eq!(g.horizon(), ms(9));
    }

    #[test]
    fn idle_time_rendered_as_dots() {
        let mut g = GanttChart::per_ms();
        let r = g.add_row("RU2");
        g.paint(r, ms(4), ms(6), '2');
        let line = g.render().lines().next().unwrap().to_string();
        assert!(line.contains("|....22|"), "{line}");
    }

    #[test]
    fn empty_chart_renders() {
        let g = GanttChart::per_ms();
        let s = g.render();
        assert!(s.contains("t/ms"));
    }

    #[test]
    fn sub_column_segments_visible() {
        let mut g = GanttChart::new(1_000);
        let r = g.add_row("R");
        g.paint(r, SimTime::from_us(500), SimTime::from_us(900), 'z');
        assert!(g.render().lines().next().unwrap().contains('z'));
    }

    #[test]
    #[should_panic]
    fn painting_missing_row_panics() {
        let mut g = GanttChart::per_ms();
        g.paint(3, ms(0), ms(1), 'x');
    }
}
