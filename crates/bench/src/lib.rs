//! Shared helpers for the benchmark harness: paper-style schedule
//! rendering used by the figure binaries.

use rtr_manager::{SimulationOutcome, Trace};

/// Renders a simulation's schedule as an ASCII Gantt chart plus a
/// paper-style caption (`Reuse: X% / Overhead: Y ms`).
pub fn render_outcome(title: &str, out: &SimulationOutcome, rus: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!("--- {title} ---\n"));
    s.push_str(&format!(
        "Reuse: {:.1}%   Overhead: {}   Makespan: {}\n",
        out.stats.reuse_rate_pct(),
        out.stats.total_overhead(),
        out.stats.makespan,
    ));
    s.push_str(&render_gantt(&out.trace, rus));
    s
}

/// Renders only the Gantt chart of a trace.
pub fn render_gantt(trace: &Trace, rus: usize) -> String {
    trace.to_gantt(rus).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_manager::{simulate, FirstCandidatePolicy, JobSpec, ManagerConfig};
    use std::sync::Arc;

    #[test]
    fn renders_caption_and_rows() {
        let jobs = vec![JobSpec::new(Arc::new(rtr_taskgraph::benchmarks::jpeg()))];
        let cfg = ManagerConfig::paper_default();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        let s = render_outcome("JPEG", &out, 4);
        assert!(s.contains("Reuse: 0.0%"));
        assert!(s.contains("RU1"));
        assert!(s.contains("RU4"));
    }
}
