//! Streaming-arrival experiment: policy × RU count × arrival intensity
//! on the multimedia workload, fed through the manager's online queue.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig_arrivals            # full grid
//! cargo run --release -p rtr-bench --bin fig_arrivals -- smoke   # CI-sized
//! cargo run --release -p rtr-bench --bin fig_arrivals -- 500 11  # apps seed
//! ```
//!
//! The table is printed as Markdown and written as CSV under
//! `results/fig_arrivals.csv`. Everything is seeded: re-running with
//! the same arguments reproduces the table bit for bit.

use rtr_workload::experiments::arrivals::{fig_arrivals, ArrivalsParams};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = match args.first().map(String::as_str) {
        Some("smoke") => ArrivalsParams::smoke(),
        _ => ArrivalsParams::default(),
    };
    if let Some(apps) = args.first().filter(|a| a.as_str() != "smoke") {
        params.apps = apps.parse().expect("apps must be a number");
    }
    if let Some(seed) = args.get(1) {
        params.seed = seed.parse().expect("seed must be a number");
    }

    println!(
        "fig_arrivals — {} apps from {{JPEG, MPEG-1, Hough}}, seed {}, RUs {:?}",
        params.apps, params.seed, params.rus
    );
    println!(
        "arrival processes: {}\n",
        params
            .processes
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let t = fig_arrivals(&params);
    println!("{}", t.to_markdown());
    let csv = Path::new("results").join("fig_arrivals.csv");
    t.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
