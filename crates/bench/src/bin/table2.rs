//! Regenerates the paper's Table II: the cost split between the
//! design-time phase (mobility calculation) and the run-time
//! replacement module, per benchmark application.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin table2
//! ```

use rtr_workload::experiments::table2::table2;

fn main() {
    println!("Table II — design-time vs run-time cost (host CPU; paper used a 100 MHz PowerPC)");
    println!("Paper: initial exec 79/37/94 ms; manager 0.87/1.02/0.88 ms; replacement");
    println!("       0.082 ms avg (0.09–0.22%); design-time 8.60/11.09/14.48 ms\n");
    let t = table2(100);
    println!("{}", t.to_markdown());
    t.write_csv(std::path::Path::new("results/table2.csv"))
        .expect("write csv");
    println!("CSV written to results/table2.csv");
}
