//! Regenerates the paper's Fig. 9 (a, b and c): reuse rates and
//! remaining reconfiguration overhead for 500 random applications on
//! 4–10 RUs.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig9            # all three
//! cargo run --release -p rtr-bench --bin fig9 -- a       # one panel
//! cargo run --release -p rtr-bench --bin fig9 -- all 500 11,22,33
//! ```
//!
//! Tables are printed as Markdown and written as CSV under `results/`.

use rtr_workload::experiments::fig9::{fig9a, fig9b, fig9c, Fig9Params};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let panel = args.first().map(String::as_str).unwrap_or("all");
    let mut params = Fig9Params::default();
    if let Some(apps) = args.get(1) {
        params.apps = apps.parse().expect("apps must be a number");
    }
    if let Some(seeds) = args.get(2) {
        params.seeds = seeds
            .split(',')
            .map(|s| s.parse().expect("seeds must be numbers"))
            .collect();
    }

    println!(
        "Fig. 9 — {} apps from {{JPEG, MPEG-1, Hough}}, seeds {:?}, RUs {:?}\n",
        params.apps, params.seeds, params.rus
    );

    let results = Path::new("results");
    if panel == "a" || panel == "all" {
        let t = fig9a(&params);
        println!("{}", t.to_markdown());
        t.write_csv(&results.join("fig9a.csv")).expect("write csv");
    }
    if panel == "b" || panel == "all" {
        let t = fig9b(&params);
        println!("{}", t.to_markdown());
        t.write_csv(&results.join("fig9b.csv")).expect("write csv");
    }
    if panel == "c" || panel == "all" {
        let t = fig9c(&params);
        println!("{}", t.to_markdown());
        t.write_csv(&results.join("fig9c.csv")).expect("write csv");
    }
    println!("CSV written under results/");
}
