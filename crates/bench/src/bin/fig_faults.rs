//! Fault injection and recovery: fault-rate class × replacement
//! policy × RU count on the multimedia workload.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig_faults            # full grid
//! cargo run --release -p rtr-bench --bin fig_faults -- smoke   # CI-sized
//! cargo run --release -p rtr-bench --bin fig_faults -- 500 11  # apps seed
//! ```
//!
//! The table is printed as Markdown and written as CSV under
//! `results/fig_faults.csv`. Before the sweep, the binary asserts the
//! fault-off rows are byte-identical (stats and trace) to the plain
//! batch path — a fault-model regression that leaks into the disabled
//! path exits non-zero instead of silently drifting a golden number.
//! After the sweep it checks the acceptance envelope: no row may lose
//! a job (the degraded-pool path completes the full batch), and every
//! low-rate row must keep availability above 90%.

use rtr_workload::experiments::faults::{
    assert_faults_off_matches_baseline, fig_faults, FaultParams,
};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = match args.first().map(String::as_str) {
        Some("smoke") => FaultParams::smoke(),
        _ => FaultParams::default(),
    };
    if let Some(apps) = args.first().filter(|a| a.as_str() != "smoke") {
        params.apps = apps.parse().expect("apps must be a number");
    }
    if let Some(seed) = args.get(1) {
        params.seed = seed.parse().expect("seed must be a number");
    }

    println!(
        "fig_faults — {} apps from {{JPEG, MPEG-1, Hough}}, seed {}, RUs {:?}",
        params.apps, params.seed, params.rus
    );

    // Golden guard: the fault-off rows must be byte-identical to the
    // pre-fault batch path (panics → non-zero exit on drift).
    let guard_params = FaultParams::smoke();
    assert_faults_off_matches_baseline(&guard_params);
    println!("fault-off golden guard: OK (byte-identical to the baseline path)\n");

    let t = fig_faults(&params);
    println!("{}", t.to_markdown());
    let csv = Path::new("results").join("fig_faults.csv");
    t.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());

    // Acceptance envelope: the degraded-pool path never loses a job,
    // and availability stays above 90% at the low fault rate.
    let csv_text = t.to_csv();
    let mut worst_low_availability = 100.0f64;
    for line in csv_text.lines().skip(1) {
        let c: Vec<&str> = line.split(',').collect();
        let jobs: usize = c[3].parse().expect("jobs column");
        assert_eq!(
            jobs, params.apps,
            "acceptance: a fault row lost jobs: {line}"
        );
        if c[0] == "low" {
            let availability: f64 = c[11].parse().expect("availability column");
            worst_low_availability = worst_low_availability.min(availability);
            assert!(
                availability > 90.0,
                "acceptance: low-rate availability {availability}% must exceed 90%: {line}"
            );
        }
    }
    println!(
        "acceptance: no jobs lost in any cell; worst low-rate availability \
         {worst_low_availability}% > 90%"
    );
}
