//! Regenerates the paper's Table I: worst-case run-time execution time
//! of the replacement strategies (victim absent from every list, all 4
//! RUs candidates). For rigorous statistics use the Criterion bench:
//! `cargo bench -p rtr-bench --bench table1`.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin table1
//! ```

use rtr_workload::experiments::table1::table1_rows;

fn main() {
    println!("Table I — worst-case decision cost (host CPU; paper used a 100 MHz PowerPC 405)");
    println!("Paper: LRU 7.2 µs; LFD 11349.8 µs; Local LFD (1/2/4)+Skip 60.3/74.1/110.2 µs\n");
    let t = table1_rows(2_000);
    println!("{}", t.to_markdown());
    t.write_csv(std::path::Path::new("results/table1.csv"))
        .expect("write csv");
    println!("CSV written to results/table1.csv");
}
