//! Regenerates the paper's Fig. 3: the Skip Events motivational
//! example — Local LFD with ASAP loading vs Local LFD allowed to delay
//! reconfigurations within the tasks' mobility.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig3
//! ```

use rtr_bench::render_outcome;
use rtr_core::{LfdPolicy, TemplateCache};
use rtr_manager::{simulate, JobSpec, Lookahead, ManagerConfig};
use std::sync::Arc;

fn main() {
    let tg1 = Arc::new(rtr_taskgraph::benchmarks::fig3_tg1());
    let tg2 = Arc::new(rtr_taskgraph::benchmarks::fig3_tg2());
    let cfg_base = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(1));
    let mut cache = TemplateCache::new();
    let jobs: Vec<JobSpec> = [&tg1, &tg2, &tg1]
        .iter()
        .map(|g| {
            cache
                .get_or_prepare(g, &cfg_base)
                .expect("fig3 graphs annotate")
                .instantiate()
        })
        .collect();

    println!("Fig. 3 — sequence TG1, TG2, TG1 on 4 RUs, 4 ms latency");
    println!(
        "TG1 = T1(12) -> {{T2(6), T3(6)}};  TG2 = T4(12) -> {{T5(8), T6(6)}} -> T7(6); ideal = {}",
        rtr_manager::ideal::ideal_sequence_makespan(&jobs, 4)
    );
    println!("Paper: ASAP 0%/12ms/74ms; + Skip Events 10%/8ms/70ms\n");

    let asap = simulate(&cfg_base, &jobs, &mut LfdPolicy::local(1)).expect("fig3a simulates");
    println!("{}", render_outcome("(a) Local LFD, ASAP", &asap, 4));

    let cfg_skip = cfg_base.clone().with_skip_events(true);
    let skip =
        simulate(&cfg_skip, &jobs, &mut LfdPolicy::local_with_skip(1)).expect("fig3b simulates");
    println!(
        "{}",
        render_outcome("(b) Local LFD + Skip Events", &skip, 4)
    );
    println!(
        "Skip Events delayed {} reconfiguration(s); task T1 reused: {}",
        skip.stats.skips,
        skip.stats.reuses == 1
    );
}
