//! Runs the extended ablations (DESIGN.md §7): Dynamic-List window
//! sweep, reconfiguration-latency sweep and workload-model sweep.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin ablations
//! ```

use rtr_workload::experiments::ablations::{
    dl_window_sweep, latency_sweep, sequence_model_sweep, tie_break_sweep,
};
use std::path::Path;

fn main() {
    let results = Path::new("results");

    // 7 RUs: enough capacity that extra future knowledge changes
    // victim choices (at 4 RUs the 15 configurations thrash and every
    // window behaves alike).
    let t = dl_window_sweep(500, 42, 7, &[1, 2, 3, 4, 6, 8]);
    println!("{}", t.to_markdown());
    t.write_csv(&results.join("ablation_dl_window.csv"))
        .unwrap();

    let t = latency_sweep(500, 42, 4, &[1, 2, 4, 8, 16]);
    println!("{}", t.to_markdown());
    t.write_csv(&results.join("ablation_latency.csv")).unwrap();

    let t = sequence_model_sweep(500, 42, 6);
    println!("{}", t.to_markdown());
    t.write_csv(&results.join("ablation_workload.csv")).unwrap();

    let t = tie_break_sweep(500, 42, 6);
    println!("{}", t.to_markdown());
    t.write_csv(&results.join("ablation_tiebreak.csv")).unwrap();

    println!("CSV written under results/");
}
