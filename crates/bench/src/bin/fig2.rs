//! Regenerates the paper's Fig. 2: the motivational example comparing
//! LRU, LFD and Local LFD on two task graphs over 4 RUs.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig2
//! ```

use rtr_bench::render_outcome;
use rtr_core::{LfdPolicy, LruPolicy};
use rtr_manager::{simulate, JobSpec, Lookahead, ManagerConfig, ReplacementPolicy};
use std::sync::Arc;

fn main() {
    let tg1 = Arc::new(rtr_taskgraph::benchmarks::fig2_tg1());
    let tg2 = Arc::new(rtr_taskgraph::benchmarks::fig2_tg2());
    let jobs: Vec<JobSpec> = [&tg1, &tg2, &tg2, &tg1, &tg2]
        .iter()
        .map(|g| JobSpec::new(Arc::clone(g)))
        .collect();

    println!("Fig. 2 — sequence TG1, TG2, TG2, TG1, TG2 on 4 RUs, 4 ms latency");
    println!(
        "TG1 = T1(2.5) -> T2(2.5) -> T3(4);  TG2 = T4(4) -> T5(4);  ideal = {}",
        rtr_manager::ideal::ideal_sequence_makespan(&jobs, 4)
    );
    println!("Paper: LRU 16.7%/22ms, LFD 41.7%/11ms, Local LFD 41.7%/15ms\n");

    let cases: Vec<(&str, Box<dyn ReplacementPolicy>, Lookahead)> = vec![
        ("(a) LRU", Box::new(LruPolicy::new()), Lookahead::None),
        ("(b) LFD", Box::new(LfdPolicy::oracle()), Lookahead::All),
        (
            "(c) Local LFD (1)",
            Box::new(LfdPolicy::local(1)),
            Lookahead::Graphs(1),
        ),
        (
            "(+) Local LFD (2) — matches LFD per §II",
            Box::new(LfdPolicy::local(2)),
            Lookahead::Graphs(2),
        ),
    ];
    for (title, mut policy, lookahead) in cases {
        let cfg = ManagerConfig::paper_default().with_lookahead(lookahead);
        let out = simulate(&cfg, &jobs, policy.as_mut()).expect("fig2 simulates");
        println!("{}", render_outcome(title, &out, 4));
    }
}
