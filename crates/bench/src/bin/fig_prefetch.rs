//! Reuse-aware configuration prefetching: prefetch depth × policy ×
//! arrival intensity on the multimedia workload.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig_prefetch            # full grid
//! cargo run --release -p rtr-bench --bin fig_prefetch -- smoke   # CI-sized
//! cargo run --release -p rtr-bench --bin fig_prefetch -- 500 11  # apps seed
//! ```
//!
//! The table is printed as Markdown and written as CSV under
//! `results/fig_prefetch.csv`. Depth 0 rows are the prefetch-off
//! baseline; before the sweep, the binary asserts they are
//! byte-identical (stats and trace) to the plain streaming path — a
//! prefetch regression that leaks into the disabled path exits
//! non-zero instead of silently drifting a golden number.

use rtr_workload::experiments::prefetch::{
    assert_prefetch_off_matches_baseline, fig_prefetch, PrefetchParams,
};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = match args.first().map(String::as_str) {
        Some("smoke") => PrefetchParams::smoke(),
        _ => PrefetchParams::default(),
    };
    if let Some(apps) = args.first().filter(|a| a.as_str() != "smoke") {
        params.apps = apps.parse().expect("apps must be a number");
    }
    if let Some(seed) = args.get(1) {
        params.seed = seed.parse().expect("seed must be a number");
    }

    println!(
        "fig_prefetch — {} apps from {{JPEG, MPEG-1, Hough}}, seed {}, RUs {:?}, depths {:?}",
        params.apps, params.seed, params.rus, params.depths
    );
    println!(
        "arrival processes: {}",
        params
            .processes
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Golden guard: the prefetch-off rows must be byte-identical to the
    // pre-prefetch streaming path (panics → non-zero exit on drift).
    let guard_params = PrefetchParams::smoke();
    assert_prefetch_off_matches_baseline(&guard_params);
    println!("prefetch-off golden guard: OK (byte-identical to the baseline path)\n");

    let t = fig_prefetch(&params);
    println!("{}", t.to_markdown());
    let csv = Path::new("results").join("fig_prefetch.csv");
    t.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());
}
