//! Preemptive, deadline-aware scheduling: preemption mode × QoS class
//! mix × arrival intensity on the multimedia workload.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig_qos            # full grid
//! cargo run --release -p rtr-bench --bin fig_qos -- smoke   # CI-sized
//! cargo run --release -p rtr-bench --bin fig_qos -- 500 11  # apps seed
//! ```
//!
//! The table is printed as Markdown and written as CSV under
//! `results/fig_qos.csv`. Before the sweep, the binary asserts the
//! uniform-mix preemption-off rows are byte-identical (stats and
//! trace) to the plain streaming path — a QoS regression that leaks
//! into the disabled path exits non-zero instead of silently drifting
//! a golden number. After the sweep it checks the acceptance envelope:
//! at the heaviest arrival intensity, checkpointing preemption must
//! cut the promoted class's deadline-miss rate at least in half
//! relative to run-to-completion.

use rtr_workload::experiments::qos::{assert_preemption_off_matches_baseline, fig_qos, QosParams};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = match args.first().map(String::as_str) {
        Some("smoke") => QosParams::smoke(),
        _ => QosParams::default(),
    };
    if let Some(apps) = args.first().filter(|a| a.as_str() != "smoke") {
        params.apps = apps.parse().expect("apps must be a number");
    }
    if let Some(seed) = args.get(1) {
        params.seed = seed.parse().expect("seed must be a number");
    }

    println!(
        "fig_qos — {} apps from {{JPEG, MPEG-1, Hough}}, seed {}, {} RUs, {}",
        params.apps,
        params.seed,
        params.rus,
        params.policy.label()
    );
    println!(
        "arrival processes (light -> heavy): {}",
        params
            .processes
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Golden guard: the uniform-mix preemption-off rows must be
    // byte-identical to the pre-QoS streaming path (panics → non-zero
    // exit on drift).
    let guard_params = QosParams::smoke();
    assert_preemption_off_matches_baseline(&guard_params);
    println!("preemption-off golden guard: OK (byte-identical to the baseline path)\n");

    let t = fig_qos(&params);
    println!("{}", t.to_markdown());
    let csv = Path::new("results").join("fig_qos.csv");
    t.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());

    // Acceptance envelope: at peak intensity, Checkpoint cuts the
    // promoted class's miss rate at least in half versus Off.
    let csv_text = t.to_csv();
    let peak = params.highest_intensity().label();
    let miss_of = |mode: &str| -> f64 {
        csv_text
            .lines()
            .find(|l| {
                let c: Vec<&str> = l.split(',').collect();
                c[0] == peak && c[1] != "uniform" && c[2] == mode
            })
            .map(|l| {
                l.split(',')
                    .nth(5)
                    .expect("miss-rate column")
                    .parse()
                    .expect("miss rate parses")
            })
            .unwrap_or_else(|| panic!("missing {mode} row at {peak}"))
    };
    let off = miss_of("off");
    let ckpt = miss_of("checkpoint");
    assert!(
        off > 0.0 && ckpt <= off / 2.0,
        "acceptance: checkpoint miss rate {ckpt}% must be <= half of off's {off}%"
    );
    println!("acceptance: checkpoint miss {ckpt}% <= half of off {off}% at {peak}");
}
