//! The VOPR: a deterministic fuzz harness driving seeded scenario ×
//! policy × arrival × prefetch × engine-lifecycle campaigns through
//! the named invariant-checker registry.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin vopr -- smoke
//! cargo run --release -p rtr-bench --bin vopr -- --seed 7 --cases 5000
//! cargo run --release -p rtr-bench --bin vopr -- --list
//! cargo run --release -p rtr-bench --bin vopr -- --disable pooled-identity --cases 200
//! cargo run --release -p rtr-bench --bin vopr -- --replay vopr-000000000005eedc-17
//! ```
//!
//! Every failing case prints a fingerprint
//! (`vopr-<master_seed>-<case_index>`) that `--replay` re-runs to the
//! byte-identical violation report (greedy-minimised reproduction
//! included unless `--no-minimize`). `smoke` is the CI entry point: a
//! fixed master seed, 1000 cases, all checkers enabled; it writes the
//! per-checker coverage summary to `results/vopr_coverage.csv`, fails
//! on any violation, and fails if any registered checker never fired
//! or any lifecycle, required depth, preemption mode, QoS class mix,
//! runtime fault-rate class, fault-class mix, fault class, pooled
//! device count or placement policy went unexercised.

use rtr_manager::{CheckerRegistry, PlacementKind, PreemptionMode};
use rtr_workload::vopr::{
    case_report, fault_mix_label, fault_rate_label, qos_mix_label, run_campaign, CampaignConfig,
    CampaignSummary, Fingerprint, Lifecycle, DEPTHS,
};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
usage: vopr [smoke] [options]
  smoke              CI campaign: fixed seed, 1000 cases (override with
                     --cases for the nightly tier), all checkers,
                     coverage gate, results/vopr_coverage.csv
options:
  --seed N           master seed (decimal or 0x hex; default 0x5EEDC)
  --cases N          number of cases (default 1000)
  --enable a,b,...   enable only these checkers (disables the rest)
  --disable a,b,...  disable these checkers
  --replay FP        replay one fingerprint (vopr-<seed>-<case>[-f<fault>])
  --no-minimize      skip the greedy minimiser on failing cases
  --list             list registered checkers and exit
";

struct Args {
    smoke: bool,
    seed: u64,
    cases: Option<u64>,
    enable: Vec<String>,
    disable: Vec<String>,
    replay: Option<String>,
    minimize: bool,
    list: bool,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|e| format!("bad number '{s}': {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        seed: CampaignConfig::default().master_seed,
        cases: None,
        enable: Vec::new(),
        disable: Vec::new(),
        replay: None,
        minimize: true,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "smoke" => args.smoke = true,
            "--seed" => args.seed = parse_u64(&value("--seed")?)?,
            "--cases" => args.cases = Some(parse_u64(&value("--cases")?)?),
            "--enable" => args
                .enable
                .extend(value("--enable")?.split(',').map(str::to_string)),
            "--disable" => args
                .disable
                .extend(value("--disable")?.split(',').map(str::to_string)),
            "--replay" => args.replay = Some(value("--replay")?),
            "--no-minimize" => args.minimize = false,
            "--list" => args.list = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn build_registry(args: &Args) -> Result<CheckerRegistry, String> {
    let mut registry = CheckerRegistry::standard();
    if !args.enable.is_empty() {
        for name in registry.names() {
            registry.set_enabled(name, false).expect("registered name");
        }
        for name in &args.enable {
            registry
                .set_enabled(name, true)
                .map_err(|e| e.to_string())?;
        }
    }
    for name in &args.disable {
        registry
            .set_enabled(name, false)
            .map_err(|e| e.to_string())?;
    }
    Ok(registry)
}

fn print_summary(summary: &CampaignSummary) {
    println!(
        "\n{} cases: {} violating, {} stalled, {} stall-mismatched",
        summary.cases, summary.violating_cases, summary.stalled, summary.stall_mismatches
    );
    print!("lifecycles:");
    for (l, n) in Lifecycle::ALL.iter().zip(summary.lifecycle_cases) {
        print!(" {}={n}", l.name());
    }
    print!("\ndepths (checked cases):");
    for (d, n) in DEPTHS.iter().zip(summary.depth_cases) {
        print!(" {d}={n}");
    }
    print!("\npreemption modes:");
    for (m, n) in PreemptionMode::ALL.iter().zip(summary.preemption_cases) {
        print!(" {}={n}", m.label());
    }
    print!("\nqos mixes:");
    for (mix, n) in summary.qos_mix_cases.iter().enumerate() {
        print!(" {}={n}", qos_mix_label(mix as u8));
    }
    print!("\nfault rates:");
    for (rate, n) in summary.fault_rate_cases.iter().enumerate() {
        print!(" {}={n}", fault_rate_label(rate as u8));
    }
    print!("\nfault mixes (fault-active cases):");
    for (mix, n) in summary.fault_mix_cases.iter().enumerate() {
        print!(" {}={n}", fault_mix_label(mix as u8));
    }
    print!("\nfault injections:");
    for (name, n) in ["transient-load", "upset", "ru-hard"]
        .iter()
        .zip(summary.fault_injections)
    {
        print!(" {name}={n}");
    }
    print!("\nfleet widths:");
    for (width, n) in [1usize, 2, 4].iter().zip(summary.device_cases) {
        print!(" {width}-device={n}");
    }
    print!("\nplacements (multi-device cases):");
    for (kind, n) in PlacementKind::ALL.iter().zip(summary.placement_cases) {
        print!(" {}={n}", kind.label());
    }
    println!("\n\nchecker coverage (fired / violations):");
    for c in &summary.coverage {
        println!("  {:<22} {:>10} / {}", c.name, c.fired, c.violations);
    }
    for failure in &summary.failures {
        println!("\n--- failing case {} ---", failure.fingerprint);
        print!("{}", failure.rendered);
    }
    if summary.violating_cases as usize > summary.failures.len() {
        println!(
            "({} further failing cases not shown)",
            summary.violating_cases as usize - summary.failures.len()
        );
    }
}

/// The coverage gate: every registered checker fired, every lifecycle
/// ran, the depths the acceptance envelope names (0 and 4) were both
/// exercised by checked cases, every preemption mode and QoS class
/// mix was exercised at least once, every runtime fault-rate class
/// and fault-class mix ran, every fault class actually injected, and
/// the fleet dimension was covered (2- and 4-device pools both ran,
/// and every placement policy routed at least one multi-device case).
fn coverage_gate(summary: &CampaignSummary) -> Result<(), String> {
    let unfired = summary.unfired();
    if !unfired.is_empty() {
        return Err(format!("checkers never fired: {unfired:?}"));
    }
    let fault_holes = summary.fault_holes();
    if !fault_holes.is_empty() {
        return Err(format!("fault classes never injected: {fault_holes:?}"));
    }
    let fleet_holes = summary.fleet_holes();
    if !fleet_holes.is_empty() {
        return Err(format!("fleet dimensions never ran: {fleet_holes:?}"));
    }
    for (rate, n) in summary.fault_rate_cases.iter().enumerate() {
        if *n == 0 {
            return Err(format!(
                "fault rate class '{}' never ran",
                fault_rate_label(rate as u8)
            ));
        }
    }
    for (mix, n) in summary.fault_mix_cases.iter().enumerate() {
        if *n == 0 {
            return Err(format!(
                "fault class mix '{}' never ran",
                fault_mix_label(mix as u8)
            ));
        }
    }
    for (l, n) in Lifecycle::ALL.iter().zip(summary.lifecycle_cases) {
        if n == 0 {
            return Err(format!("lifecycle '{}' never ran", l.name()));
        }
    }
    for (d, n) in DEPTHS.iter().zip(summary.depth_cases) {
        if (*d == 0 || *d == 4) && n == 0 {
            return Err(format!("prefetch depth {d} had no checked case"));
        }
    }
    for (m, n) in PreemptionMode::ALL.iter().zip(summary.preemption_cases) {
        if n == 0 {
            return Err(format!("preemption mode '{}' never ran", m.label()));
        }
    }
    for (mix, n) in summary.qos_mix_cases.iter().enumerate() {
        if *n == 0 {
            return Err(format!(
                "qos class mix '{}' never ran",
                qos_mix_label(mix as u8)
            ));
        }
    }
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let registry = build_registry(&args)?;

    if args.list {
        println!("registered checkers:");
        for (name, description, enabled) in registry.rows() {
            let mark = if enabled { "on " } else { "off" };
            println!("  [{mark}] {name:<22} {description}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(fp_str) = &args.replay {
        let fp: Fingerprint = fp_str.parse()?;
        let report = case_report(&fp, &registry, args.minimize);
        print!("{}", report.rendered);
        return Ok(if report.outcome.violation_count() == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    let config = if args.smoke {
        // The CI campaign is pinned: same seed, same cases, all
        // checkers — its pass/fail must not drift run to run. The
        // nightly tier reuses the pinned seed and the coverage gate
        // but scales the case count with an explicit `--cases`.
        CampaignConfig {
            cases: args.cases.unwrap_or(CampaignConfig::default().cases),
            minimize: args.minimize,
            ..CampaignConfig::default()
        }
    } else {
        CampaignConfig {
            master_seed: args.seed,
            cases: args.cases.unwrap_or(1000),
            minimize: args.minimize,
            ..CampaignConfig::default()
        }
    };

    println!(
        "vopr campaign: master_seed={:#018x} cases={} checkers={}",
        config.master_seed,
        config.cases,
        registry
            .rows()
            .iter()
            .filter(|(_, _, enabled)| *enabled)
            .count()
    );
    let summary = run_campaign(&config, &registry);
    print_summary(&summary);

    if args.smoke {
        let results = Path::new("results");
        std::fs::create_dir_all(results).map_err(|e| format!("create results/: {e}"))?;
        let csv_path = results.join("vopr_coverage.csv");
        std::fs::write(&csv_path, summary.coverage_csv())
            .map_err(|e| format!("write {}: {e}", csv_path.display()))?;
        println!("\ncoverage summary written to {}", csv_path.display());
        coverage_gate(&summary)?;
        println!(
            "coverage gate: all checkers fired; all lifecycles, required depths, \
             preemption modes, qos mixes, fault rates, fault mixes, pool widths \
             and placement policies ran; every fault class injected"
        );
    }

    Ok(if summary.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("vopr: {msg}");
            ExitCode::FAILURE
        }
    }
}
