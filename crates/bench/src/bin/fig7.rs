//! Regenerates the paper's Fig. 7: the design-time mobility
//! calculation probes for Task Graph 2 of Fig. 3.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig7
//! ```

use rtr_bench::render_gantt;
use rtr_core::compute_mobility;
use rtr_manager::{simulate, FirstCandidatePolicy, JobSpec, ManagerConfig};
use std::sync::Arc;

fn main() {
    let g = Arc::new(rtr_taskgraph::benchmarks::fig3_tg2());
    let cfg = ManagerConfig::paper_default();

    println!("Fig. 7 — mobility calculation for TG2 = T4(12) -> {{T5(8), T6(6)}} -> T7(6)");
    println!("Paper: reference 30 ms; delay T5 -> 36 ms; delay T6 -> 32 ms;");
    println!("       delay T7 once -> 30 ms, twice -> 32 ms; mobilities (0, 0, 1)\n");

    let probes: Vec<(&str, Vec<u32>)> = vec![
        ("(a) reference schedule", vec![0, 0, 0, 0]),
        ("(b) delaying Task 5 once", vec![0, 1, 0, 0]),
        ("(c) delaying Task 6 once", vec![0, 0, 1, 0]),
        ("(d) delaying Task 7 once", vec![0, 0, 0, 1]),
        ("(d') delaying Task 7 twice", vec![0, 0, 0, 2]),
    ];
    for (title, delays) in probes {
        let job = JobSpec::new(Arc::clone(&g)).with_forced_delays(Arc::new(delays));
        let out = simulate(&cfg, &[job], &mut FirstCandidatePolicy).expect("probe simulates");
        println!("--- {title}: makespan {} ---", out.stats.makespan);
        println!("{}", render_gantt(&out.trace, 4));
    }

    let mobility = compute_mobility(&g, &cfg).expect("mobility computes");
    println!(
        "Computed mobilities (T4, T5, T6, T7) = {:?}   [paper: (0, 0, 0, 1)]",
        mobility
    );
}
