//! Multi-tenant fleet sweep: placement policy × device mix × tenant
//! count × arrival process on the multimedia workload.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin fig_fleet            # full grid
//! cargo run --release -p rtr-bench --bin fig_fleet -- smoke   # CI-sized
//! cargo run --release -p rtr-bench --bin fig_fleet -- 600 11  # apps seed
//! ```
//!
//! The table is printed as Markdown and written as CSV under
//! `results/fig_fleet.csv`. Before the sweep, the binary asserts the
//! single-device fleet rows are byte-identical (stats and trace) to
//! the plain batch path — the virtualization layer must be invisible
//! when the pool has one device. After the sweep it checks the
//! acceptance envelope: no cell may lose an admitted job, and
//! `reuse-affinity` placement must beat `round-robin` on mean
//! cross-device reuse (the headline claim of pooling: routing a job to
//! the device that already holds its configurations turns cross-device
//! cache misses into reuses).

use rtr_manager::PlacementKind;
use rtr_workload::experiments::fleet::{
    assert_fleet_single_matches_baseline, fig_fleet, mean_reuse_of, FleetParams,
};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = match args.first().map(String::as_str) {
        Some("smoke") => FleetParams::smoke(),
        _ => FleetParams::default(),
    };
    if let Some(apps) = args.first().filter(|a| a.as_str() != "smoke") {
        params.apps = apps.parse().expect("apps must be a number");
    }
    if let Some(seed) = args.get(1) {
        params.seed = seed.parse().expect("seed must be a number");
    }

    println!(
        "fig_fleet — {} apps from {{JPEG, MPEG-1, Hough}}, seed {}, device mixes {:?}",
        params.apps, params.seed, params.device_mixes
    );

    // Golden guard: a single-device fleet must be byte-identical to
    // the plain batch path (panics → non-zero exit on drift).
    assert_fleet_single_matches_baseline(&FleetParams::smoke());
    println!("single-device golden guard: OK (byte-identical to the baseline path)\n");

    let t = fig_fleet(&params);
    println!("{}", t.to_markdown());
    let csv = Path::new("results").join("fig_fleet.csv");
    t.write_csv(&csv).expect("write csv");
    println!("CSV written to {}", csv.display());

    // Acceptance envelope: no cell loses an admitted job, and the
    // reuse-affinity placement beats round-robin on mean reuse.
    let csv_text = t.to_csv();
    for line in csv_text.lines().skip(1) {
        let c: Vec<&str> = line.split(',').collect();
        let jobs: usize = c[4].parse().expect("jobs column");
        assert_eq!(
            jobs, params.apps,
            "acceptance: a fleet cell lost admitted jobs: {line}"
        );
    }
    let affinity = mean_reuse_of(&csv_text, PlacementKind::ReuseAffinity);
    let round_robin = mean_reuse_of(&csv_text, PlacementKind::RoundRobin);
    assert!(
        affinity > round_robin,
        "acceptance: reuse-affinity mean reuse {affinity:.2}% must beat \
         round-robin {round_robin:.2}%"
    );
    println!(
        "acceptance: no admitted jobs lost in any cell; mean reuse \
         {affinity:.2}% (reuse-affinity) > {round_robin:.2}% (round-robin)"
    );
}
