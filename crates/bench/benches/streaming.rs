//! Streaming-engine hot-path benchmarks.
//!
//! * `streaming/<feed>` — 500 applications pushed through the online
//!   queue of `rtr_manager::Engine` under batch, Poisson and bursty
//!   feeds: the cost of the arrival/activation path on top of the event
//!   loop, and a regression guard for the streaming hot path.
//! * `streaming/submit_only` — the per-job submission cost in
//!   isolation (design-time cache hit + arrival event push).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::LfdPolicy;
use rtr_manager::{Engine, JobSpec, Lookahead, ManagerConfig, ReplacementPolicy};
use rtr_sim::SimTime;
use rtr_workload::arrivals::ArrivalProcess;
use rtr_workload::sequence::paper_workload;
use std::hint::black_box;

fn jobs_with(arrivals: &[SimTime]) -> Vec<JobSpec> {
    paper_workload(42)
        .into_iter()
        .zip(arrivals)
        .map(|(g, &at)| JobSpec::new(g).with_arrival(at))
        .collect()
}

fn cfg() -> ManagerConfig {
    ManagerConfig::paper_default()
        .with_lookahead(Lookahead::Graphs(1))
        .with_trace(false)
}

fn run_stream(cfg: &ManagerConfig, jobs: &[JobSpec], policy: &mut dyn ReplacementPolicy) -> u64 {
    policy.reset();
    let mut engine = Engine::new(cfg);
    for job in jobs {
        engine.submit(job.clone());
    }
    engine.run(policy);
    engine
        .finish()
        .expect("streaming run completes")
        .stats
        .reuses
}

fn bench_streaming_feeds(c: &mut Criterion) {
    let feeds = [
        ("batch", ArrivalProcess::Batch),
        (
            "poisson_70ms",
            ArrivalProcess::Poisson {
                mean_gap_us: 70_000,
            },
        ),
        (
            "bursty_8x560ms",
            ArrivalProcess::Bursty {
                size: 8,
                mean_gap_us: 560_000,
            },
        ),
    ];
    let cfg = cfg();
    let mut group = c.benchmark_group("streaming_500_apps_4rus");
    group.sample_size(10);
    for (name, process) in feeds {
        let jobs = jobs_with(&process.generate(500, 7));
        group.bench_with_input(BenchmarkId::from_parameter(name), &jobs, |b, jobs| {
            let mut policy = LfdPolicy::local(1);
            b.iter(|| black_box(run_stream(&cfg, jobs, &mut policy)));
        });
    }
    group.finish();
}

fn bench_submission(c: &mut Criterion) {
    let cfg = cfg();
    let jobs = jobs_with(&ArrivalProcess::Periodic { period_us: 1_000 }.generate(500, 7));
    c.bench_function("streaming/submit_only_500_jobs", |b| {
        b.iter(|| {
            let mut engine = Engine::new(&cfg);
            for job in &jobs {
                engine.submit(job.clone());
            }
            black_box(engine.submitted_jobs())
        });
    });
}

criterion_group!(benches, bench_streaming_feeds, bench_submission);
criterion_main!(benches);
