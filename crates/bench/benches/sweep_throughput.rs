//! Whole-sweep throughput: cells/sec through the pooled engine.
//!
//! The tentpole claim of the sweep-throughput overhaul is end-to-end:
//! a replication loop should pay for the *events it simulates*, not
//! for redundant per-cell work (design-time artifacts, engine
//! construction, per-job allocations, per-job ideal recomputation, and
//! — with warm-start replay — re-deriving decisions an adjacent cell
//! already made). This bench drives a policy × RU-count ×
//! stream-length grid the way the reworked sweep harness does —
//!
//! * one shared [`TemplateRegistry`] for the whole grid (design time
//!   paid once per distinct `(template, system)` pair),
//! * one pooled [`Engine`] per cell configuration, jobs submitted once,
//! * cells walked in Gray-code order (policy, then RUs, with the
//!   stream-length axis boustrophedon) so consecutive cells differ in
//!   one knob and share a decision prefix: the engine's warm-start log
//!   replays the shared prefix instead of re-simulating it,
//! * replications via [`Engine::reset_replay`] + [`Engine::run_with`]
//!   (monomorphised policy dispatch), each bit-exact with a fresh run
//!   (asserted against the one-shot [`run_cell`] path before timing) —
//!
//! and reports **cells per second** per cell, against the **pre-PR
//! baseline** recorded in `results/sweep_throughput_baseline.csv`
//! (measured with the pre-overhaul `run_cell` pipeline — fresh
//! `TemplateCache`, fresh engine, per-job ideal — at the commit before
//! the pooling change, on the same machine class that commits the
//! results).
//!
//! Outputs:
//! * `results/sweep_throughput.csv` — per-cell medians, speedups, and
//!   the warm-start shape of the cell's cross-cell verification run
//!   (`warm_hit`, `divergence_depth`, `replayed_events`);
//! * `results/BENCH_sweep.json` — one trajectory point for the
//!   acceptance grid (1e3 jobs × 8 RUs, aggregated over the policy
//!   axis), the pass/fail of the cells/sec floor, and the engine's
//!   aggregate warm-start hit-rate over the whole grid.
//!
//! Env knobs: `SWEEP_SMOKE=1` shrinks batches for CI; `SWEEP_FLOOR`
//! overrides the aggregate pooled cells/sec floor (default 1000 — far
//! below the ≥8000 a dev machine measures with warm-start replay, so
//! only a genuine regression or a pathologically slow runner trips it;
//! CI fails when the floor is violated). A malformed `SWEEP_FLOOR`
//! aborts loudly instead of silently falling back to the default.

use rtr_core::{LfdPolicy, LruPolicy, TemplateRegistry};
use rtr_manager::{Engine, JobSpec, ReplacementPolicy};
use rtr_workload::runner::{run_cell, CellConfig};
use rtr_workload::{PolicyKind, SequenceModel};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const RU_COUNTS: [usize; 3] = [4, 8, 16];
const STREAM_LENS: [usize; 2] = [100, 1_000];
const SEQUENCE_SEED: u64 = 42;
/// The acceptance sub-grid of the ISSUE: 1e3 jobs on 8 RUs.
const ACCEPT_APPS: usize = 1_000;
const ACCEPT_RUS: usize = 8;
/// Default aggregate pooled cells/sec floor on the acceptance grid.
const DEFAULT_FLOOR: f64 = 1_000.0;

fn policies() -> Vec<(PolicyKind, &'static str)> {
    vec![
        (PolicyKind::Lru, "LRU"),
        (
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            "LocalLFD1+Skip",
        ),
        (PolicyKind::Lfd, "LFD"),
    ]
}

/// Times `reps` pooled replications of the prepared cell and returns
/// seconds per cell. The policy is concrete, so the engine loop is
/// monomorphised — the production sweep path. After the first
/// replication seals the cell's decision log, every further one is a
/// warm-start full replay.
fn time_pooled<P: ReplacementPolicy>(engine: &mut Engine, policy: &mut P, reps: u32) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        policy.reset();
        engine.reset_replay();
        engine.run_with(policy);
        let out = engine.outcome().expect("cell simulates to completion");
        black_box(out.stats.reuses);
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

/// Best (minimum) seconds-per-cell over `batches` timing batches — the
/// standard noise-robust estimator for throughput: background load on a
/// shared machine only ever inflates a batch, never deflates it, so the
/// fastest batch is the closest measurement of the code itself. The
/// committed pre-PR baseline uses the same estimator.
fn best_pooled<P: ReplacementPolicy>(
    engine: &mut Engine,
    policy: &mut P,
    reps: u32,
    batches: usize,
) -> f64 {
    (0..batches)
        .map(|_| time_pooled(engine, policy, reps))
        .fold(f64::INFINITY, f64::min)
}

/// One measured cell: throughput plus the warm-start shape of its
/// verification run (the run that attempted to warm-start off the
/// *previous* grid cell's sealed log).
struct CellMeasure {
    cells_per_sec: f64,
    warm_hit: bool,
    divergence_depth: usize,
    replayed_events: usize,
}

/// Measures one cell through the pooled path.
fn measure_cell(
    registry: &Arc<TemplateRegistry>,
    engine: &mut Engine,
    sequence: &[Arc<rtr_taskgraph::TaskGraph>],
    kind: PolicyKind,
    rus: usize,
    reps: u32,
    batches: usize,
) -> CellMeasure {
    let cell = CellConfig::new(kind, rus);
    let cfg = cell.manager_config();
    // Design time once per cell configuration: memoised in the shared
    // registry, so repeat templates/systems across the grid are free —
    // and instantiation hands back the *same* template Arcs every time,
    // which is what lets the warm-start log recognise a neighbouring
    // cell's jobs as a shared prefix.
    let jobs: Vec<JobSpec> = sequence
        .iter()
        .map(|g| {
            registry
                .instantiate(g, &cfg, kind.needs_mobility())
                .expect("benchmark graphs have feasible reference schedules")
        })
        .collect();
    engine.reset_with_config(&cfg, &jobs);

    // Bit-exactness guard: the pooled replication must reproduce the
    // one-shot path before it is worth timing. This run doubles as the
    // cross-cell warm-start attempt against the previous cell's log,
    // so its warm shape is snapshotted before the timed replications
    // overwrite the "last run" stats with their full replays.
    let verify_and_time = |engine: &mut Engine, p: &mut dyn ReplacementPolicy| {
        verify_against_one_shot(engine, p, sequence, &cell);
        let warm = engine.warm_stats();
        (
            warm.last_was_hit,
            warm.last_divergence_depth,
            warm.last_replayed_events,
        )
    };
    let (seconds, (warm_hit, divergence_depth, replayed_events)) = match kind {
        PolicyKind::Lru => {
            let mut p = LruPolicy::new();
            let shape = verify_and_time(engine, &mut p);
            (best_pooled(engine, &mut p, reps, batches), shape)
        }
        PolicyKind::LocalLfd { window, skip } => {
            let mut p = if skip {
                LfdPolicy::local_with_skip(window)
            } else {
                LfdPolicy::local(window)
            };
            let shape = verify_and_time(engine, &mut p);
            (best_pooled(engine, &mut p, reps, batches), shape)
        }
        PolicyKind::Lfd => {
            let mut p = LfdPolicy::oracle();
            let shape = verify_and_time(engine, &mut p);
            (best_pooled(engine, &mut p, reps, batches), shape)
        }
        other => unreachable!("bench grid does not include {other:?}"),
    };
    CellMeasure {
        cells_per_sec: 1.0 / seconds,
        warm_hit,
        divergence_depth,
        replayed_events,
    }
}

fn verify_against_one_shot<P: ReplacementPolicy + ?Sized>(
    engine: &mut Engine,
    policy: &mut P,
    sequence: &[Arc<rtr_taskgraph::TaskGraph>],
    cell: &CellConfig,
) {
    policy.reset();
    engine.reset_replay();
    engine.run_with(policy);
    let pooled = engine.outcome().expect("cell simulates to completion");
    let fresh = run_cell(sequence, cell).expect("cell simulates to completion");
    assert_eq!(
        pooled.stats, fresh.stats,
        "pooled replication diverged from the one-shot path"
    );
}

/// Pre-PR baseline cells/sec, keyed by `(policy label, rus, apps)`,
/// parsed from the committed `results/sweep_throughput_baseline.csv`.
fn load_baseline() -> Vec<(String, usize, usize, f64)> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/sweep_throughput_baseline.csv"
    );
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .skip(1)
        .filter_map(|line| {
            let mut it = line.split(',');
            Some((
                it.next()?.to_string(),
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
            ))
        })
        .collect()
}

fn main() {
    let smoke = std::env::var("SWEEP_SMOKE").is_ok_and(|v| v != "0");
    // A malformed floor must fail the run, not silently measure against
    // the default: a typo'd CI variable would otherwise pass a
    // regressed build against a floor nobody asked for.
    let floor: f64 = match std::env::var("SWEEP_FLOOR") {
        Ok(v) => v.trim().parse().unwrap_or_else(|e| {
            panic!("malformed SWEEP_FLOOR={v:?}: {e} (expected a cells/sec number)")
        }),
        Err(std::env::VarError::NotPresent) => DEFAULT_FLOOR,
        Err(e) => panic!("unreadable SWEEP_FLOOR: {e}"),
    };
    // Long streams get more, smaller batches: spreading the samples
    // over a wider wall-clock window lets the best-of estimator escape
    // multi-second background-load spikes on shared machines.
    let (batches_small, batches_large, reps_small, reps_large) = if smoke {
        (3, 3, 20, 5)
    } else {
        (7, 15, 200, 20)
    };

    let templates: Vec<Arc<rtr_taskgraph::TaskGraph>> =
        rtr_taskgraph::benchmarks::multimedia_suite()
            .into_iter()
            .map(Arc::new)
            .collect();
    let baseline = load_baseline();
    let baseline_of = |label: &str, rus: usize, apps: usize| -> Option<f64> {
        baseline
            .iter()
            .find(|(l, r, a, _)| l == label && *r == rus && *a == apps)
            .map(|&(_, _, _, v)| v)
    };

    // One registry and one pooled engine serve the entire grid — the
    // sweep-harness topology (per worker thread) collapsed onto one
    // thread for stable timing. Stream sequences share one seed, so the
    // shorter stream is a *prefix* of the longer one: walking the apps
    // axis boustrophedon keeps consecutive cells one knob apart and
    // lets the warm-start log carry across them.
    let registry = Arc::new(TemplateRegistry::new());
    let mut engine: Option<Engine> = None;
    let sequences: Vec<(usize, Vec<Arc<rtr_taskgraph::TaskGraph>>)> = STREAM_LENS
        .iter()
        .map(|&apps| {
            (
                apps,
                SequenceModel::UniformRandom.generate(&templates, apps, SEQUENCE_SEED),
            )
        })
        .collect();

    let mut rows = String::from(
        "policy,rus,apps,baseline_cells_per_sec,pooled_cells_per_sec,speedup_vs_baseline,\
         warm_hit,divergence_depth,replayed_events\n",
    );
    let mut accept_base_time = 0.0f64;
    let mut accept_base_cells = 0u32;
    let mut accept_pooled_time = 0.0f64;
    let mut accept_cells = 0u32;
    let mut accept_detail: Vec<(String, f64)> = Vec::new();
    let mut row_order: Vec<String> = Vec::new();

    // Gray-code grid walk: policy (outermost) → RU count → stream
    // length, with the innermost axis reversing direction every RU step
    // so consecutive cells always differ in exactly one knob.
    let mut forward = true;
    for (kind, label) in policies() {
        for &rus in &RU_COUNTS {
            let walk: Vec<usize> = if forward {
                (0..sequences.len()).collect()
            } else {
                (0..sequences.len()).rev().collect()
            };
            forward = !forward;
            for si in walk {
                let (apps, ref sequence) = sequences[si];
                let (reps, batches) = if apps >= 1_000 {
                    (reps_large, batches_large)
                } else {
                    (reps_small, batches_small)
                };
                let cell_cfg = CellConfig::new(kind, rus).manager_config();
                let engine = engine.get_or_insert_with(|| {
                    Engine::with_templates(&cell_cfg, registry.template_set())
                });
                let m = measure_cell(&registry, engine, sequence, kind, rus, reps, batches);
                let base = baseline_of(label, rus, apps);
                let speedup = base.map(|b| m.cells_per_sec / b);
                println!(
                    "{label} rus={rus} apps={apps}: pooled={:.0} cells/s baseline={} speedup={} \
                     warm={}",
                    m.cells_per_sec,
                    base.map_or("n/a".into(), |b| format!("{b:.0}")),
                    speedup.map_or("n/a".into(), |s| format!("{s:.2}x")),
                    if m.warm_hit {
                        format!(
                            "hit(depth={}, replayed={})",
                            m.divergence_depth, m.replayed_events
                        )
                    } else {
                        "cold".to_string()
                    },
                );
                row_order.push(format!(
                    "{label},{rus},{apps},{},{:.1},{},{},{},{}\n",
                    base.map_or("n/a".into(), |b| format!("{b:.1}")),
                    m.cells_per_sec,
                    speedup.map_or("n/a".into(), |s| format!("{s:.2}")),
                    m.warm_hit,
                    m.divergence_depth,
                    m.replayed_events,
                ));
                if apps == ACCEPT_APPS && rus == ACCEPT_RUS {
                    // The pooled aggregate (the floor guard) never
                    // depends on the baseline CSV being present.
                    accept_pooled_time += 1.0 / m.cells_per_sec;
                    accept_cells += 1;
                    accept_detail.push((label.to_string(), m.cells_per_sec));
                    if let Some(b) = base {
                        accept_base_time += 1.0 / b;
                        accept_base_cells += 1;
                    }
                }
            }
        }
    }
    for row in &row_order {
        rows.push_str(row);
    }

    // Aggregate the acceptance grid: cells/sec over the policy axis at
    // 1e3 jobs × 8 RUs (total cells / total time, both paths). The
    // speedup is only meaningful when every acceptance cell has a
    // committed baseline entry.
    let agg_pooled = f64::from(accept_cells) / accept_pooled_time.max(f64::MIN_POSITIVE);
    let agg_base = (accept_base_cells == accept_cells && accept_cells > 0)
        .then(|| f64::from(accept_base_cells) / accept_base_time.max(f64::MIN_POSITIVE));
    let agg_speedup = agg_base.map(|b| agg_pooled / b.max(f64::MIN_POSITIVE));
    if agg_base.is_none() {
        eprintln!(
            "warning: pre-PR baseline missing for {} of {accept_cells} acceptance cells \
             (results/sweep_throughput_baseline.csv) — speedup unavailable, floor still enforced",
            accept_cells - accept_base_cells
        );
    }
    let floor_ok = agg_pooled >= floor;
    println!(
        "acceptance grid ({ACCEPT_APPS} jobs x {ACCEPT_RUS} RUs, {accept_cells} cells): \
         baseline={} cells/s pooled={agg_pooled:.0} cells/s speedup={} floor={floor:.0} ({})",
        agg_base.map_or("n/a".into(), |b| format!("{b:.0}")),
        agg_speedup.map_or("n/a".into(), |s| format!("{s:.2}x")),
        if floor_ok { "ok" } else { "VIOLATED" }
    );
    let warm = engine
        .as_ref()
        .map(|e| e.warm_stats().clone())
        .unwrap_or_default();
    let warm_rate = if warm.attempts > 0 {
        (warm.full_hits + warm.prefix_hits) as f64 / warm.attempts as f64
    } else {
        0.0
    };
    println!(
        "warm-start over the grid: {} attempts, {} full hits, {} prefix hits (hit-rate {:.3})",
        warm.attempts, warm.full_hits, warm.prefix_hits, warm_rate
    );

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("results directory is writable");
    std::fs::write(format!("{dir}/sweep_throughput.csv"), rows).expect("CSV is writable");
    let json = format!(
        "{{\n  \"bench\": \"sweep_throughput\",\n  \"grid\": \"{ACCEPT_APPS}jobs_{ACCEPT_RUS}rus\",\n  \
         \"cells\": {accept_cells},\n  \"baseline_cells_per_sec\": {},\n  \
         \"pooled_cells_per_sec\": {agg_pooled:.1},\n  \"speedup_vs_baseline\": {},\n  \
         \"floor_cells_per_sec\": {floor:.1},\n  \"floor_ok\": {floor_ok},\n  \"smoke\": {smoke},\n  \
         \"warm_attempts\": {},\n  \"warm_full_hits\": {},\n  \"warm_prefix_hits\": {},\n  \
         \"warm_hit_rate\": {warm_rate:.3}\n}}\n",
        agg_base.map_or("null".into(), |b| format!("{b:.1}")),
        agg_speedup.map_or("null".into(), |s| format!("{s:.2}")),
        warm.attempts,
        warm.full_hits,
        warm.prefix_hits,
    );
    std::fs::write(format!("{dir}/BENCH_sweep.json"), json).expect("JSON is writable");
    println!("wrote {dir}/sweep_throughput.csv and {dir}/BENCH_sweep.json");

    if !floor_ok {
        let per_cell = accept_detail
            .iter()
            .map(|(l, v)| format!("{l}={v:.0}"))
            .collect::<Vec<_>>()
            .join(", ");
        let slowest = accept_detail
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, v)| format!("{l} at {v:.0} cells/s"))
            .unwrap_or_else(|| "<no acceptance cells measured>".to_string());
        panic!(
            "pooled sweep throughput REGRESSION on the {ACCEPT_APPS}x{ACCEPT_RUS} grid: \
             measured {agg_pooled:.0} cells/s aggregate < floor {floor:.0} cells/s \
             (per-cell: {per_cell}; slowest: {slowest}). \
             Re-measure with `cargo bench --bench sweep_throughput` or adjust SWEEP_FLOOR \
             only if the regression is intended."
        );
    }
}
