//! Prefetch-subsystem hot-path benchmark.
//!
//! `prefetch/depth_<d>` — 500 applications streamed through the engine
//! under a near-saturation Poisson feed with the planner at depth `d`
//! (0 = off). Depth 0 pins the cost of the always-taken `enabled()`
//! check on the pre-prefetch path; the enabled depths measure the
//! planner (window derivation + next-k scan + guarded victim choice)
//! riding on every idle-port event. The run also reports the prefetch
//! counters once per depth so the bench doubles as a quick sanity probe
//! of hit rates on a realistic feed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::LfdPolicy;
use rtr_manager::{Engine, JobSpec, Lookahead, ManagerConfig, PrefetchConfig};
use rtr_sim::SimTime;
use rtr_workload::arrivals::ArrivalProcess;
use rtr_workload::sequence::paper_workload;
use std::hint::black_box;

fn jobs_with(arrivals: &[SimTime]) -> Vec<JobSpec> {
    paper_workload(42)
        .into_iter()
        .zip(arrivals)
        .map(|(g, &at)| JobSpec::new(g).with_arrival(at))
        .collect()
}

fn run_stream(cfg: &ManagerConfig, jobs: &[JobSpec]) -> u64 {
    let mut policy = LfdPolicy::local(1);
    let mut engine = Engine::new(cfg);
    for job in jobs {
        engine.submit(job.clone());
    }
    engine.run_with(&mut policy);
    engine
        .finish()
        .expect("streaming run completes")
        .stats
        .reuses
}

fn bench_prefetch_depths(c: &mut Criterion) {
    let jobs = jobs_with(
        &ArrivalProcess::Poisson {
            mean_gap_us: 70_000,
        }
        .generate(500, 7),
    );
    let mut group = c.benchmark_group("prefetch_500_apps_4rus_poisson70ms");
    group.sample_size(10);
    for depth in [0usize, 1, 2, 4] {
        let cfg = ManagerConfig::paper_default()
            .with_lookahead(Lookahead::Graphs(1))
            .with_trace(false)
            .with_prefetch(PrefetchConfig::with_depth(depth));
        // One non-measured run to print the counters this depth earns.
        {
            let mut policy = LfdPolicy::local(1);
            let mut engine = Engine::new(&cfg);
            for job in &jobs {
                engine.submit(job.clone());
            }
            engine.run_with(&mut policy);
            let stats = engine.finish().expect("completes").stats;
            println!(
                "depth {depth}: reuses {} loads {} prefetch {:?}",
                stats.reuses, stats.loads, stats.prefetch
            );
        }
        group.bench_with_input(BenchmarkId::new("depth", depth), &jobs, |b, jobs| {
            b.iter(|| black_box(run_stream(&cfg, jobs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prefetch_depths);
criterion_main!(benches);
