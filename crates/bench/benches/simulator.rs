//! End-to-end simulator throughput and design-time cost benchmarks.
//!
//! * `fig9_run/<policy>` — one full Fig. 9 cell (500 applications,
//!   4 RUs): the cost of regenerating one data point of the paper's
//!   evaluation, and a regression guard for the event loop.
//! * `mobility/<benchmark>` — the design-time phase per template
//!   (the paper's Table II column 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::compute_mobility;
use rtr_manager::ManagerConfig;
use rtr_workload::runner::{run_cell, CellConfig};
use rtr_workload::sequence::paper_workload;
use rtr_workload::PolicyKind;
use std::hint::black_box;
use std::sync::Arc;

fn bench_full_runs(c: &mut Criterion) {
    let sequence = paper_workload(42);
    let mut group = c.benchmark_group("fig9_run_500_apps_4rus");
    group.sample_size(10);
    let policies = [
        ("LRU", PolicyKind::Lru),
        (
            "LocalLFD_1",
            PolicyKind::LocalLfd {
                window: 1,
                skip: false,
            },
        ),
        (
            "LocalLFD_1_skip",
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
        ),
        ("LFD", PolicyKind::Lfd),
    ];
    for (name, kind) in policies {
        let cell = CellConfig::new(kind, 4);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cell, |b, cell| {
            b.iter(|| black_box(run_cell(&sequence, cell).unwrap().stats.reuses));
        });
    }
    group.finish();
}

fn bench_mobility(c: &mut Criterion) {
    let cfg = ManagerConfig::paper_default();
    let mut group = c.benchmark_group("mobility_design_time");
    for g in rtr_taskgraph::benchmarks::multimedia_suite() {
        let graph = Arc::new(g);
        let name = graph.name().to_string();
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            b.iter(|| black_box(compute_mobility(graph, &cfg).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_runs, bench_mobility);
criterion_main!(benches);
