//! Replacement-decision hot path: legacy linear scan vs. the
//! incremental [`ReuseIndex`].
//!
//! Measures one `select_victim` call of the paper's LFD policy over the
//! *same* decision, backed two ways:
//!
//! * `scan` — a [`FutureView`] over the visible stream, resolved by the
//!   legacy joint linear pass: O(stream × candidates) worst case (the
//!   cost model of the paper's Table I);
//! * `index` — the engine's [`ReuseIndex`], one ordered lookup per
//!   candidate: O(candidates · log n).
//!
//! The grid is stream length {10², 10³, 10⁴} × RU count {4, 8, 16};
//! half the candidates never occur in the stream (the worst case that
//! forces the scan to walk the whole window) and half occur late.
//! Besides the criterion timings, running the bench writes
//! `results/replacement_decision.csv` with per-cell medians and the
//! scan/index speedup — the ISSUE 3 acceptance number.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rtr_core::LfdPolicy;
use rtr_hw::RuId;
use rtr_manager::{DecisionContext, FutureView, ReplacementPolicy, ReuseIndex, VictimCandidate};
use rtr_sim::SimTime;
use rtr_taskgraph::ConfigId;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const STREAM_LENS: [usize; 3] = [100, 1_000, 10_000];
const RU_COUNTS: [usize; 3] = [4, 8, 16];

/// One decision scenario shared by both backings.
struct Scenario {
    stream: Vec<ConfigId>,
    candidates: Vec<VictimCandidate>,
    index: ReuseIndex,
}

impl Scenario {
    /// Deterministic scenario: a stream over a 64-config pool; even
    /// candidates hold configs that never occur (forcing the scan to
    /// exhaust the window — the paper's Table I worst case), odd
    /// candidates hold configs whose next occurrence is in the last
    /// tenth of the stream (a deep but successful scan).
    fn new(stream_len: usize, rus: usize) -> Self {
        // Small xorshift so the stream is reproducible without pulling
        // RNG deps into the bench.
        let mut state = 0x9E37_79B9_u64 | stream_len as u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let late_base = 500u32;
        let mut stream: Vec<ConfigId> = (0..stream_len)
            .map(|_| ConfigId((next() % 64) as u32))
            .collect();
        let candidates: Vec<VictimCandidate> = (0..rus as u16)
            .map(|i| {
                let config = if i % 2 == 0 {
                    ConfigId(9_000 + u32::from(i))
                } else {
                    ConfigId(late_base + u32::from(i))
                };
                VictimCandidate {
                    ru: RuId(i),
                    config,
                }
            })
            .collect();
        // Plant the "late" configs in the final tenth of the stream.
        let tail_start = stream_len - stream_len / 10 - 1;
        for (k, cand) in candidates.iter().enumerate() {
            if cand.ru.0 % 2 == 1 {
                let slot = tail_start + (k * 7) % (stream_len / 10).max(1);
                stream[slot.min(stream_len - 1)] = cand.config;
            }
        }
        let mut index = ReuseIndex::new();
        index.push_job(Arc::new(stream.clone()));
        Scenario {
            stream,
            candidates,
            index,
        }
    }

    fn decide_scan(&self, policy: &mut LfdPolicy) -> RuId {
        let view = FutureView::new(vec![&self.stream]);
        let ctx =
            DecisionContext::from_view(SimTime::ZERO, ConfigId(8_888), &self.candidates, &view);
        policy.select_victim(&ctx)
    }

    fn decide_index(&self, policy: &mut LfdPolicy) -> RuId {
        let window = self.index.window(0, 0);
        let ctx = DecisionContext::indexed(
            SimTime::ZERO,
            ConfigId(8_888),
            &self.candidates,
            &self.index,
            window,
        );
        policy.select_victim(&ctx)
    }
}

fn bench_replacement_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement_decision");
    for &n in &STREAM_LENS {
        for &rus in &RU_COUNTS {
            let sc = Scenario::new(n, rus);
            let mut policy = LfdPolicy::oracle();
            assert_eq!(
                sc.decide_scan(&mut policy),
                sc.decide_index(&mut policy),
                "backings must agree before being compared for speed"
            );
            group.bench_with_input(
                BenchmarkId::new("scan", format!("n{n}_ru{rus}")),
                &sc,
                |b, sc| {
                    let mut policy = LfdPolicy::oracle();
                    b.iter(|| black_box(sc.decide_scan(&mut policy)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("index", format!("n{n}_ru{rus}")),
                &sc,
                |b, sc| {
                    let mut policy = LfdPolicy::oracle();
                    b.iter(|| black_box(sc.decide_index(&mut policy)));
                },
            );
        }
    }
    group.finish();
}

/// Median nanoseconds per call of `f` (fixed batches, warmed up).
fn median_ns<F: FnMut() -> RuId>(mut f: F) -> f64 {
    const BATCHES: usize = 15;
    const CALLS: u32 = 200;
    for _ in 0..CALLS {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..CALLS {
                black_box(f());
            }
            t0.elapsed().as_nanos() as f64 / f64::from(CALLS)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[BATCHES / 2]
}

/// Writes `results/replacement_decision.csv`: per-cell median decision
/// times for both backings and the scan/index speedup.
fn write_summary_csv() -> std::io::Result<()> {
    let mut csv = String::from("stream_len,rus,scan_ns,index_ns,speedup\n");
    for &n in &STREAM_LENS {
        for &rus in &RU_COUNTS {
            let sc = Scenario::new(n, rus);
            let mut p_scan = LfdPolicy::oracle();
            let mut p_index = LfdPolicy::oracle();
            let scan = median_ns(|| sc.decide_scan(&mut p_scan));
            let index = median_ns(|| sc.decide_index(&mut p_index));
            let speedup = scan / index;
            csv.push_str(&format!("{n},{rus},{scan:.1},{index:.1},{speedup:.2}\n"));
            println!(
                "summary: n={n} rus={rus} scan={scan:.1}ns index={index:.1}ns speedup={speedup:.2}x"
            );
        }
    }
    // Anchor on the manifest so the CSV lands in the workspace-root
    // results/ directory regardless of the bench runner's CWD.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/replacement_decision.csv");
    std::fs::write(&path, csv)?;
    println!("wrote {path}");
    Ok(())
}

criterion_group!(benches, bench_replacement_decision);

fn main() {
    benches();
    write_summary_csv().expect("summary CSV is writable");
}
