//! Million-job fleet soak: sustained ingress throughput through the
//! multi-tenant submission front-end.
//!
//! The fleet layer's cost model is "placement is bookkeeping": one
//! residency-model scan per job on the dispatch plane, then the pooled
//! engines do exactly the work a dedicated engine would. This soak
//! drives 1e6 jobs (50k under `FLEET_SMOKE=1`) through a 4-device
//! heterogeneous pool (2/4/6/4 RUs) under `reuse-affinity` placement,
//! in ingress waves of 10k with a [`Fleet::drain`] between waves —
//! eight tenants, one of them greedy (half of all submissions) against
//! a per-wave quota, so admission control and the rejection ledger are
//! on the hot path too. Decision recording and traces are off, as a
//! production-scale run would have them.
//!
//! The soak runs twice and the two outcomes must be identical — the
//! determinism claim at scale — while the wall-clock of the faster run
//! sets the throughput figure (background load only ever inflates a
//! run, never deflates it).
//!
//! Outputs `results/BENCH_fleet.json`: admitted jobs/sec, the
//! cross-device reuse rate, Jain's fairness index over per-tenant
//! completions, and the pass/fail of the jobs/sec floor.
//!
//! Env knobs: `FLEET_SMOKE=1` shrinks the soak to 50k jobs for CI;
//! `FLEET_FLOOR` overrides the admitted-jobs/sec floor (default
//! 20,000 — far below what a dev machine measures, so only a genuine
//! regression or a pathologically slow runner trips it; the run
//! panics when violated). A malformed `FLEET_FLOOR` aborts loudly
//! instead of silently falling back to the default.

use rtr_manager::{
    Fleet, FleetConfig, FleetStats, JobSpec, ManagerConfig, PlacementKind, ReplacementPolicy,
    TenantId,
};
use rtr_taskgraph::TaskGraph;
use rtr_workload::{PolicyKind, SequenceModel};
use std::sync::Arc;
use std::time::Instant;

/// RU counts of the pooled devices.
const DEVICE_RUS: [usize; 4] = [2, 4, 6, 4];
/// Tenants sharing the fleet (tenant 0 submits half of all jobs).
const TENANTS: u32 = 8;
/// Per-tenant, per-wave admission quota.
const QUOTA: usize = 2_000;
/// Ingress wave size (one `drain` per wave).
const WAVE: usize = 10_000;
/// Soak sizes.
const FULL_JOBS: usize = 1_000_000;
const SMOKE_JOBS: usize = 50_000;
const SEQUENCE_SEED: u64 = 42;
/// Default admitted-jobs/sec floor.
const DEFAULT_FLOOR: f64 = 20_000.0;

/// The tenant of submission `i`: tenant 0 is greedy (every even
/// submission), the other seven share the rest — so each 10k wave has
/// tenant 0 submitting 5k against a 2k quota while everyone else
/// stays under it. Rejection is exercised on every wave without
/// starving the well-behaved tenants.
fn tenant_of(i: usize) -> TenantId {
    if i.is_multiple_of(2) {
        TenantId(0)
    } else {
        TenantId(1 + ((i / 2) as u32 % (TENANTS - 1)))
    }
}

/// One full soak: waves of tenant-stamped batch jobs, a drain per
/// wave, one run, one roll-up. Returns the stats and the wall-clock
/// seconds of the whole ingress + simulate + roll-up pipeline.
fn soak(jobs_total: usize, policy: PolicyKind) -> (FleetStats, f64) {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let base = ManagerConfig::paper_default();
    let devices: Vec<ManagerConfig> = DEVICE_RUS
        .iter()
        .map(|&rus| base.clone().with_rus(rus))
        .collect();
    let cfg = FleetConfig::new(devices, PlacementKind::ReuseAffinity)
        .with_quota(QUOTA)
        .with_seed(SEQUENCE_SEED)
        .with_decisions(false);

    let t0 = Instant::now();
    let mut fleet = Fleet::new(cfg);
    let mut submitted = 0usize;
    let mut wave_index = 0u64;
    while submitted < jobs_total {
        let count = WAVE.min(jobs_total - submitted);
        let sequence = SequenceModel::UniformRandom.generate(
            &templates,
            count,
            SEQUENCE_SEED ^ wave_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        for (offset, graph) in sequence.into_iter().enumerate() {
            let job = JobSpec::new(graph).with_tenant(tenant_of(submitted + offset));
            // Quota rejections are the point of the greedy tenant:
            // recorded in the ledger, not errors to surface.
            let _ = fleet.submit(job);
        }
        fleet.drain();
        submitted += count;
        wave_index += 1;
    }
    let mut policies: Vec<Box<dyn ReplacementPolicy>> = (0..DEVICE_RUS.len())
        .map(|_| -> Box<dyn ReplacementPolicy> { policy.build() })
        .collect();
    fleet.run(&mut policies);
    let outcome = fleet.outcome().expect("soak simulates to completion");
    (outcome.stats, t0.elapsed().as_secs_f64())
}

fn main() {
    let smoke = std::env::var("FLEET_SMOKE").is_ok_and(|v| v != "0");
    let floor: f64 = match std::env::var("FLEET_FLOOR") {
        Ok(v) => v.trim().parse().unwrap_or_else(|e| {
            panic!("malformed FLEET_FLOOR={v:?}: {e} (expected a jobs/sec number)")
        }),
        Err(std::env::VarError::NotPresent) => DEFAULT_FLOOR,
        Err(e) => panic!("unreadable FLEET_FLOOR: {e}"),
    };
    let jobs_total = if smoke { SMOKE_JOBS } else { FULL_JOBS };

    let (stats, secs_a) = soak(jobs_total, PolicyKind::Lru);
    let (stats_b, secs_b) = soak(jobs_total, PolicyKind::Lru);
    assert_eq!(
        stats, stats_b,
        "the soak must be deterministic run to run (stats diverged)"
    );
    let secs = secs_a.min(secs_b);

    assert!(stats.balanced(), "soak roll-up out of balance");
    assert_eq!(stats.submitted, jobs_total as u64);
    assert_eq!(stats.completed, stats.admitted);
    assert!(
        stats.rejected > 0,
        "the greedy tenant must overrun its quota in every wave"
    );

    let jobs_per_sec = stats.admitted as f64 / secs.max(f64::MIN_POSITIVE);
    let reuse_pct = stats.cross_device_reuse_rate_pct();
    let fairness = stats.fairness_index();
    let floor_ok = jobs_per_sec >= floor;
    println!(
        "fleet soak ({jobs_total} jobs, {} devices, {placement}, quota {QUOTA}/wave): \
         admitted={} rejected={} in {secs:.2}s -> {jobs_per_sec:.0} jobs/s \
         reuse={reuse_pct:.2}% fairness={fairness:.3} floor={floor:.0} ({})",
        DEVICE_RUS.len(),
        stats.admitted,
        stats.rejected,
        if floor_ok { "ok" } else { "VIOLATED" },
        placement = stats.placement,
    );
    for t in &stats.per_tenant {
        println!(
            "  tenant t{}: submitted={} admitted={} rejected={} completed={}",
            t.tenant, t.submitted, t.admitted, t.rejected, t.completed
        );
    }

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(dir).expect("results directory is writable");
    let json = format!(
        "{{\n  \"bench\": \"fleet_soak\",\n  \"jobs\": {jobs_total},\n  \
         \"devices\": {:?},\n  \"placement\": \"{}\",\n  \"tenants\": {TENANTS},\n  \
         \"quota_per_wave\": {QUOTA},\n  \"admitted\": {},\n  \"rejected\": {},\n  \
         \"jobs_per_sec\": {jobs_per_sec:.1},\n  \"cross_device_reuse_pct\": {reuse_pct:.2},\n  \
         \"fairness_index\": {fairness:.4},\n  \"floor_jobs_per_sec\": {floor:.1},\n  \
         \"floor_ok\": {floor_ok},\n  \"smoke\": {smoke}\n}}\n",
        DEVICE_RUS, stats.placement, stats.admitted, stats.rejected,
    );
    std::fs::write(format!("{dir}/BENCH_fleet.json"), json).expect("JSON is writable");
    println!("wrote {dir}/BENCH_fleet.json");

    if !floor_ok {
        panic!(
            "fleet soak throughput REGRESSION: measured {jobs_per_sec:.0} admitted jobs/s \
             < floor {floor:.0} jobs/s over {jobs_total} jobs. Re-measure with \
             `cargo bench --bench fleet_soak` or adjust FLEET_FLOOR only if the \
             regression is intended."
        );
    }
}
