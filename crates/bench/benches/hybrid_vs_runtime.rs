//! The paper's 10× claim: "by performing the bulk of the computations
//! at design time, we reduce the execution time of the replacement
//! technique by 10 times with respect to an equivalent purely run-time
//! one."
//!
//! Benchmarks job-sequence preparation for a 30-application sequence
//! over the three multimedia templates:
//!
//! * `hybrid` — mobility computed once per template (3 computations),
//!   instances share the annotation.
//! * `purely_runtime` — mobility recomputed at every arrival (30
//!   computations), the cost a system without the design-time phase
//!   pays.

use criterion::{criterion_group, criterion_main, Criterion};
use rtr_core::pipeline::{prepare_jobs_hybrid, prepare_jobs_runtime};
use rtr_manager::ManagerConfig;
use rtr_taskgraph::TaskGraph;
use rtr_workload::SequenceModel;
use std::hint::black_box;
use std::sync::Arc;

fn bench_pipelines(c: &mut Criterion) {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, 30, 99);
    let cfg = ManagerConfig::paper_default();

    let mut group = c.benchmark_group("mobility_preparation_30_apps");
    group.bench_function("hybrid_design_time", |b| {
        b.iter(|| black_box(prepare_jobs_hybrid(&sequence, &cfg).unwrap()));
    });
    group.bench_function("purely_runtime", |b| {
        b.iter(|| black_box(prepare_jobs_runtime(&sequence, &cfg).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
