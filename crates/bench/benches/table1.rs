//! Criterion version of the paper's Table I: worst-case decision time
//! per replacement strategy.
//!
//! The scenario matches §VI.B: the victim's configuration "never exists
//! in the complete list of reconfigurations or the Dynamic List", so
//! LFD-family policies scan their whole visible stream; all 4 RUs are
//! candidates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_workload::experiments::table1::WorstCase;
use rtr_workload::PolicyKind;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_worst_case_decision");
    let cases: Vec<(&str, PolicyKind, usize)> = vec![
        ("LRU", PolicyKind::Lru, 0),
        ("LFD_full_sequence", PolicyKind::Lfd, usize::MAX),
        (
            "LocalLFD_1_skip",
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            1,
        ),
        (
            "LocalLFD_2_skip",
            PolicyKind::LocalLfd {
                window: 2,
                skip: true,
            },
            2,
        ),
        (
            "LocalLFD_4_skip",
            PolicyKind::LocalLfd {
                window: 4,
                skip: true,
            },
            4,
        ),
    ];
    for (name, kind, dl) in cases {
        let wc = WorstCase::new(4, dl);
        let mut policy = kind.build();
        group.bench_with_input(BenchmarkId::from_parameter(name), &wc, |b, wc| {
            b.iter(|| black_box(wc.decide(policy.as_mut())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
