//! Fleet-layer equivalence properties.
//!
//! The multi-tenant fleet virtualizes N pooled engines behind one
//! submission front-end, and its contract is that the virtualization
//! is *invisible*:
//!
//! * a single-device fleet is byte-identical (stats and trace) to the
//!   plain [`simulate`] path, however the ingress is interleaved with
//!   [`Fleet::drain`];
//! * an N-device round-robin fleet equals N independent engines run on
//!   the round-robin partition of the job list;
//! * `reuse-affinity` placement never routes a job to a device with
//!   less resident-configuration overlap than the best available;
//! * per-tenant quota backpressure is pure filtering — dropping the
//!   rejected submissions up front and running without a quota yields
//!   the byte-identical fleet outcome.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reconfig_reuse::taskgraph::generate::{self, GenConfig};
use rtr_core::{FifoPolicy, LfdPolicy, LfuPolicy, LruPolicy, MruPolicy, RandomPolicy};
use rtr_manager::fleet::ResidencyModel;
use rtr_manager::{
    simulate, simulate_fleet, FirstCandidatePolicy, Fleet, FleetConfig, JobSpec, Lookahead,
    ManagerConfig, PlacementKind, ReplacementPolicy, SimulationOutcome, TenantId,
};
use rtr_taskgraph::TaskGraph;
use rtr_workload::ArrivalProcess;
use std::sync::Arc;

fn arrival_process(kind: u8) -> ArrivalProcess {
    match kind % 4 {
        0 => ArrivalProcess::Batch,
        1 => ArrivalProcess::Poisson {
            mean_gap_us: 40_000,
        },
        2 => ArrivalProcess::Periodic { period_us: 35_000 },
        _ => ArrivalProcess::Bursty {
            size: 3,
            mean_gap_us: 150_000,
        },
    }
}

/// Builds the policy for `id` (fresh state every call).
fn build_policy(id: u8, seed: u64) -> Box<dyn ReplacementPolicy> {
    match id % 8 {
        0 => Box::new(FirstCandidatePolicy),
        1 => Box::new(LruPolicy::new()),
        2 => Box::new(FifoPolicy::new()),
        3 => Box::new(MruPolicy::new()),
        4 => Box::new(LfuPolicy::new()),
        5 => Box::new(RandomPolicy::new(seed)),
        6 => Box::new(LfdPolicy::local(1 + (seed % 3) as usize)),
        _ => Box::new(LfdPolicy::oracle()),
    }
}

fn lookahead_for(id: u8, seed: u64) -> Lookahead {
    match id % 8 {
        6 => Lookahead::Graphs(1 + (seed % 3) as usize),
        7 => Lookahead::All,
        _ => Lookahead::None,
    }
}

/// One randomly drawn fleet scenario: tenant-stamped jobs and the base
/// device configuration.
#[derive(Debug, Clone)]
struct Scenario {
    jobs: Vec<JobSpec>,
    cfg: ManagerConfig,
    policy_id: u8,
    policy_seed: u64,
}

fn build_scenario(
    seed: u64,
    apps: usize,
    rus: usize,
    arrivals_kind: u8,
    policy_id: u8,
    tenants: usize,
) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen_cfg = GenConfig {
        exec_us: (1_000, 25_000),
        config_base: 50,
        config_pool: Some(10),
    };
    let templates = 1 + (seed % 3) as usize;
    let family: Vec<Arc<TaskGraph>> = generate::template_family(&mut rng, templates, &gen_cfg)
        .into_iter()
        .map(Arc::new)
        .collect();
    let cfg = ManagerConfig::paper_default()
        .with_rus(rus)
        .with_lookahead(lookahead_for(policy_id, seed))
        .with_trace(true);
    let arrivals = arrival_process(arrivals_kind).generate(apps, seed ^ 0x5EED);
    let jobs: Vec<JobSpec> = (0..apps)
        .map(|i| {
            JobSpec::new(Arc::clone(&family[i % family.len()]))
                .with_arrival(arrivals[i])
                .with_tenant(TenantId((i % tenants) as u32))
        })
        .collect();
    Scenario {
        jobs,
        cfg,
        policy_id,
        policy_seed: seed,
    }
}

fn fingerprint(outcome: &SimulationOutcome) -> (String, String) {
    (
        serde_json::to_string(&outcome.stats).expect("stats serialise"),
        serde_json::to_string(&outcome.trace).expect("trace serialises"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single-device fleet is byte-identical to the plain engine
    /// path, including when the ingress is drained midway (drain is
    /// dispatch, not execution — the FIFO order cannot change).
    #[test]
    fn single_device_fleet_is_bit_exact_with_simulate(
        seed in any::<u64>(),
        apps in 1usize..16,
        rus in 1usize..7,
        arrivals in 0u8..4,
        policy in 0u8..8,
        tenants in 1usize..4,
    ) {
        let s = build_scenario(seed, apps, rus, arrivals, policy, tenants);
        let fresh = {
            let mut p = build_policy(s.policy_id, s.policy_seed);
            simulate(&s.cfg, &s.jobs, p.as_mut()).expect("scenario completes")
        };

        // Batch ingress through the wrapper.
        let cfg = FleetConfig::single(s.cfg.clone());
        let outcome = simulate_fleet(&cfg, &s.jobs, || build_policy(s.policy_id, s.policy_seed))
            .expect("fleet completes");
        prop_assert_eq!(fingerprint(&outcome.devices[0]), fingerprint(&fresh));

        // Interleaved ingress: submit half, drain, submit the rest.
        let mut fleet = Fleet::new(cfg);
        let half = s.jobs.len() / 2;
        for job in &s.jobs[..half] {
            fleet.submit(job.clone()).expect("no quota configured");
        }
        fleet.drain();
        for job in &s.jobs[half..] {
            fleet.submit(job.clone()).expect("no quota configured");
        }
        let mut policies = vec![build_policy(s.policy_id, s.policy_seed)];
        fleet.run(&mut policies);
        let outcome = fleet.outcome().expect("fleet completes");
        prop_assert_eq!(fingerprint(&outcome.devices[0]), fingerprint(&fresh));
    }

    /// An N-device round-robin fleet equals N independent engines, each
    /// running the round-robin partition of the job list (job `i` on
    /// device `i % N`).
    #[test]
    fn round_robin_fleet_equals_independent_engines(
        seed in any::<u64>(),
        apps in 1usize..16,
        rus in 1usize..6,
        arrivals in 0u8..4,
        policy in 0u8..8,
        devices in 2usize..5,
    ) {
        let s = build_scenario(seed, apps, rus, arrivals, policy, 2);
        let device_cfgs: Vec<ManagerConfig> = (0..devices)
            .map(|d| s.cfg.clone().with_rus(1 + ((rus - 1 + d) % 6)))
            .collect();
        let cfg = FleetConfig::new(device_cfgs.clone(), PlacementKind::RoundRobin);
        let outcome = simulate_fleet(&cfg, &s.jobs, || build_policy(s.policy_id, s.policy_seed))
            .expect("fleet completes");
        for (d, dev_cfg) in device_cfgs.iter().enumerate() {
            let routed: Vec<JobSpec> = s
                .jobs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % devices == d)
                .map(|(_, j)| j.clone())
                .collect();
            let mut p = build_policy(s.policy_id, s.policy_seed);
            let independent =
                simulate(dev_cfg, &routed, p.as_mut()).expect("independent engine completes");
            prop_assert_eq!(
                fingerprint(&outcome.devices[d]),
                fingerprint(&independent),
                "device {} diverged from its independent engine",
                d
            );
        }
    }

    /// `reuse-affinity` placement never routes below the best resident
    /// overlap: replaying the residency models from scratch, every
    /// recorded decision chose a device whose overlap equals the
    /// maximum across the pool.
    #[test]
    fn reuse_affinity_never_routes_below_best_overlap(
        seed in any::<u64>(),
        apps in 2usize..20,
        rus in 1usize..6,
        arrivals in 0u8..4,
        policy in 0u8..8,
        devices in 2usize..5,
    ) {
        let s = build_scenario(seed, apps, rus, arrivals, policy, 3);
        let device_cfgs: Vec<ManagerConfig> = (0..devices)
            .map(|d| s.cfg.clone().with_rus(1 + ((rus - 1 + d) % 6)))
            .collect();
        let rus_per_device: Vec<usize> = device_cfgs.iter().map(|c| c.rus).collect();
        let cfg = FleetConfig::new(device_cfgs, PlacementKind::ReuseAffinity);
        let outcome = simulate_fleet(&cfg, &s.jobs, || build_policy(s.policy_id, s.policy_seed))
            .expect("fleet completes");
        prop_assert_eq!(outcome.decisions.len(), s.jobs.len());
        let mut models: Vec<ResidencyModel> = rus_per_device
            .iter()
            .map(|&capacity| ResidencyModel::new(capacity))
            .collect();
        for decision in &outcome.decisions {
            let replayed: Vec<u32> = models
                .iter()
                .map(|m| m.overlap(&decision.cfg_seq))
                .collect();
            prop_assert_eq!(
                &replayed,
                &decision.overlaps,
                "recorded overlaps diverge from the replayed residency model"
            );
            let best = *replayed.iter().max().expect("at least one device");
            prop_assert_eq!(
                replayed[decision.device], best,
                "job {} routed to device {} with overlap {} while {} was available",
                decision.submit_index, decision.device,
                replayed[decision.device], best
            );
            models[decision.device].admit(&decision.cfg_seq);
        }
    }

    /// Quota backpressure is pure filtering: running the admitted
    /// prefix (the first `quota` submissions of each tenant) without
    /// any quota reproduces the quota'd fleet byte for byte, and the
    /// rejection ledger accounts for exactly the filtered jobs.
    #[test]
    fn quota_rejections_are_pure_filtering(
        seed in any::<u64>(),
        apps in 4usize..20,
        rus in 1usize..6,
        arrivals in 0u8..4,
        policy in 0u8..8,
        tenants in 1usize..4,
        quota in 1usize..6,
    ) {
        let s = build_scenario(seed, apps, rus, arrivals, policy, tenants);
        let device_cfgs: Vec<ManagerConfig> =
            vec![s.cfg.clone(), s.cfg.clone().with_rus(1 + (rus % 6))];
        let quotad = FleetConfig::new(device_cfgs.clone(), PlacementKind::LeastLoaded)
            .with_quota(quota);
        let outcome = simulate_fleet(&quotad, &s.jobs, || build_policy(s.policy_id, s.policy_seed))
            .expect("fleet completes");

        // With one undrained ingress window, the admitted set is the
        // first `quota` submissions of each tenant.
        let mut pending = vec![0usize; tenants];
        let admitted: Vec<JobSpec> = s
            .jobs
            .iter()
            .filter(|j| {
                let p = &mut pending[j.tenant.0 as usize];
                *p += 1;
                *p <= quota
            })
            .cloned()
            .collect();
        let rejected = s.jobs.len() - admitted.len();
        prop_assert_eq!(outcome.stats.admitted, admitted.len() as u64);
        prop_assert_eq!(outcome.stats.rejected, rejected as u64);

        let open = FleetConfig::new(device_cfgs, PlacementKind::LeastLoaded);
        let filtered = simulate_fleet(&open, &admitted, || build_policy(s.policy_id, s.policy_seed))
            .expect("filtered fleet completes");
        for (d, dev) in outcome.devices.iter().enumerate() {
            prop_assert_eq!(
                fingerprint(dev),
                fingerprint(&filtered.devices[d]),
                "device {} diverged once the rejected jobs were pre-filtered",
                d
            );
        }
    }
}
