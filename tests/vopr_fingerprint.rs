//! Fingerprint replay round-trips for the vopr fuzz harness: a failing
//! case's fingerprint — parsed back from its string form — must replay
//! through the public replay API ([`case_report`]) to the
//! byte-identical violation report, minimised reproduction included.

use rtr_manager::CheckerRegistry;
use rtr_workload::vopr::{
    case_report, run_campaign, CampaignConfig, CaseStatus, Fault, Fingerprint,
};

/// Finds a case whose injected fault actually produces violations
/// (faults only bite on runs that execute at least one task).
fn failing_fingerprint(registry: &CheckerRegistry, fault: Fault) -> Fingerprint {
    for case_index in 0..64 {
        let fp = Fingerprint {
            master_seed: 0xF00D,
            case_index,
            fault: Some(fault),
        };
        if case_report(&fp, registry, false).outcome.violation_count() > 0 {
            return fp;
        }
    }
    panic!("no case in 0..64 produced a violation under {fault:?}");
}

#[test]
fn fabricated_violation_replays_to_identical_report() {
    let registry = CheckerRegistry::standard();
    for fault in [Fault::DropExecEnd, Fault::BumpReuses] {
        let fp = failing_fingerprint(&registry, fault);
        let original = case_report(&fp, &registry, true);
        assert!(
            original.outcome.violation_count() > 0,
            "the fault must fabricate a violation"
        );
        // Round-trip: stringified fingerprint → parse → replay.
        let parsed: Fingerprint = fp.to_string().parse().expect("fingerprint parses back");
        assert_eq!(parsed, fp);
        let replayed = case_report(&parsed, &registry, true);
        assert_eq!(
            original.rendered, replayed.rendered,
            "replay must reproduce the byte-identical violation report"
        );
    }
}

#[test]
fn fault_violations_are_attributed_to_named_checkers() {
    let registry = CheckerRegistry::standard();
    let fp = failing_fingerprint(&registry, Fault::BumpReuses);
    let report = case_report(&fp, &registry, false);
    match &report.outcome.status {
        CaseStatus::Checked(r) => {
            assert!(
                r.failing().contains(&"counter-equality"),
                "a bumped reuse counter must trip counter-equality, got {:?}",
                r.failing()
            );
        }
        other => panic!("expected a checked case, got {other:?}"),
    }
}

#[test]
fn campaigns_are_deterministic() {
    let registry = CheckerRegistry::standard();
    let config = CampaignConfig {
        master_seed: 0xBEE5,
        cases: 64,
        minimize: false,
        ..CampaignConfig::default()
    };
    let a = run_campaign(&config, &registry);
    let b = run_campaign(&config, &registry);
    assert_eq!(a.cases, b.cases);
    assert_eq!(a.stalled, b.stalled);
    assert_eq!(a.violating_cases, b.violating_cases);
    assert_eq!(a.lifecycle_cases, b.lifecycle_cases);
    assert_eq!(a.depth_cases, b.depth_cases);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.coverage_csv(), b.coverage_csv());
    // A healthy engine: no real violations in the un-faulted campaign.
    assert!(a.is_clean(), "campaign found violations");
    // Every lifecycle ran within 64 cases.
    assert!(a.lifecycle_cases.iter().all(|&n| n > 0));
}

#[test]
fn campaign_with_disabled_checker_reports_no_coverage_for_it() {
    let mut registry = CheckerRegistry::standard();
    registry
        .set_enabled("pooled-identity", false)
        .expect("registered name");
    let config = CampaignConfig {
        master_seed: 0xBEE5,
        cases: 16,
        minimize: false,
        ..CampaignConfig::default()
    };
    let summary = run_campaign(&config, &registry);
    assert!(
        !summary.coverage.iter().any(|c| c.name == "pooled-identity"),
        "disabled checkers must not appear in coverage"
    );
}
