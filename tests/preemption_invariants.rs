//! Hand-built preemption schedules, validated by checker name.
//!
//! Two task graphs on the paper-default device (4 ms loads):
//!
//! * `LOW` (priority 0): chain `L1(20ms) -> L2(20ms)`, arriving at 0.
//! * `HIGH` (priority 5): single `H1(5ms)`, arriving mid-execution of
//!   `L1`.
//!
//! Under `PreemptionMode::Checkpoint` the arrival suspends `LOW`,
//! checkpoints the in-flight `L1` and runs `HIGH` to completion; `LOW`
//! then resumes, re-claims its still-resident configurations and pays
//! `remainder + restore` for `L1`. Under `Kill` the same schedule
//! replays `L1` in full and books the elapsed slice as lost work. The
//! timelines are pinned event-for-event through the expected stats, and
//! every trace goes through the full checker registry — the three QoS
//! checkers (`no-lost-work`, `preemption-order`, `qos-accounting`) must
//! fire and stay clean.

use rtr_core::LruPolicy;
use rtr_manager::{
    simulate, CheckContext, CheckerRegistry, JobSpec, ManagerConfig, PreemptionMode, QosClass,
    SimulationOutcome,
};
use rtr_sim::{SimDuration, SimTime};
use rtr_taskgraph::{ConfigId, TaskGraphBuilder};
use std::sync::Arc;

fn low_graph() -> Arc<rtr_taskgraph::TaskGraph> {
    let mut b = TaskGraphBuilder::new("LOW");
    let l1 = b.node("L1", ConfigId(10), SimDuration::from_ms(20));
    let l2 = b.node("L2", ConfigId(11), SimDuration::from_ms(20));
    b.edge(l1, l2);
    Arc::new(b.build().expect("chain is valid"))
}

fn high_graph() -> Arc<rtr_taskgraph::TaskGraph> {
    let mut b = TaskGraphBuilder::new("HIGH");
    b.node("H1", ConfigId(20), SimDuration::from_ms(5));
    Arc::new(b.build().expect("single node is valid"))
}

/// `LOW` at 0, `HIGH` (priority 5, 25 ms deadline) at `high_arrival`.
fn jobs(high_arrival: SimTime) -> Vec<JobSpec> {
    vec![
        JobSpec::new(low_graph()).with_qos(QosClass::priority(0)),
        JobSpec::new(high_graph())
            .with_arrival(high_arrival)
            .with_qos(QosClass::priority(5).with_deadline(SimTime::from_us(25_000))),
    ]
}

fn run(mode: PreemptionMode, high_arrival: SimTime) -> (SimulationOutcome, Vec<JobSpec>) {
    let cfg = ManagerConfig::paper_default().with_preemption(mode);
    let jobs = jobs(high_arrival);
    let out = simulate(&cfg, &jobs, &mut LruPolicy::new()).expect("schedule completes");
    (out, jobs)
}

/// Full-registry validation; returns the report for by-name asserts.
fn validate(out: &SimulationOutcome, jobs: &[JobSpec]) -> rtr_manager::RegistryReport {
    let cfg = ManagerConfig::paper_default();
    let cx = CheckContext::new(
        &out.trace,
        jobs,
        cfg.device.reconfig_latency,
        Some(&out.stats),
    );
    let report = CheckerRegistry::standard().run(&cx);
    assert!(report.is_clean(), "{}", report.render());
    report
}

fn assert_fired(report: &rtr_manager::RegistryReport, name: &str) {
    let o = report.outcome(name).expect("checker is registered");
    assert!(o.fired > 0, "checker {name} never fired on this schedule");
}

#[test]
fn checkpoint_schedule_suspends_and_resumes() {
    // t=0 load L1 (0-4), L1 runs 4-24; load L2 (4-8). HIGH arrives at
    // 10 with the port idle: L1 checkpointed (14 ms left), L2's claim
    // released, LOW suspended. HIGH loads (10-14), runs 14-19, meets
    // its 25 ms deadline. LOW resumes at 19: both configurations are
    // still resident, so L1 re-runs 19-37 (14 ms + 4 ms restore) and
    // L2 runs 37-57.
    let (out, jobs) = run(PreemptionMode::Checkpoint, SimTime::from_us(10_000));
    let report = validate(&out, &jobs);
    for name in ["no-lost-work", "preemption-order", "qos-accounting"] {
        assert_fired(&report, name);
    }
    let c = out.trace.counts();
    assert_eq!(c.preemptions, 1);
    assert_eq!(c.checkpoints, 1);
    assert_eq!(c.killed_nodes, 0);
    assert_eq!(c.resumes, 1);
    let q = &out.stats.qos;
    assert_eq!(q.preemptions, 1);
    assert_eq!(q.checkpoints, 1);
    assert_eq!(q.replayed_nodes, 0);
    assert_eq!(q.lost_work_cycles, SimDuration::ZERO);
    assert_eq!(q.deadline_misses, 0, "HIGH completes at 19 ms < 25 ms");
    assert_eq!(out.stats.makespan, SimDuration::from_us(57_000));
    let high = q.class(5).expect("priority-5 row exists");
    assert_eq!(high.jobs, 1);
    assert_eq!(high.max, SimDuration::from_us(9_000), "HIGH sojourn 10->19");
}

#[test]
fn kill_schedule_replays_and_books_lost_work() {
    // Same timeline to the preemption instant; the kill discards L1's
    // 10-4 = 6 ms of progress, and the resume at 19 replays the full
    // 20 ms (19-39), then L2 runs 39-59.
    let (out, jobs) = run(PreemptionMode::Kill, SimTime::from_us(10_000));
    let report = validate(&out, &jobs);
    for name in ["no-lost-work", "preemption-order", "qos-accounting"] {
        assert_fired(&report, name);
    }
    let c = out.trace.counts();
    assert_eq!(c.preemptions, 1);
    assert_eq!(c.checkpoints, 0);
    assert_eq!(c.killed_nodes, 1);
    assert_eq!(c.resumes, 1);
    let q = &out.stats.qos;
    assert_eq!(q.replayed_nodes, 1);
    assert_eq!(q.lost_work_cycles, SimDuration::from_us(6_000));
    assert_eq!(q.deadline_misses, 0);
    assert_eq!(out.stats.makespan, SimDuration::from_us(59_000));
}

#[test]
fn preemption_defers_behind_inflight_demand_load() {
    // HIGH arrives at 5 ms, while L2's demand load occupies the port
    // (4-8). The preemption must wait for the load to land, then
    // execute at 8: L1 is checkpointed with 16 ms left, HIGH runs
    // 12-17, LOW resumes at 17 (L1 17-37, L2 37-57).
    let (out, jobs) = run(PreemptionMode::Checkpoint, SimTime::from_us(5_000));
    let report = validate(&out, &jobs);
    assert_fired(&report, "preemption-order");
    let c = out.trace.counts();
    assert_eq!(c.preemptions, 1);
    assert_eq!(c.checkpoints, 1);
    assert_eq!(out.stats.makespan, SimDuration::from_us(57_000));
    let high = out.stats.qos.class(5).expect("priority-5 row exists");
    assert_eq!(high.max, SimDuration::from_us(12_000), "HIGH sojourn 5->17");
}

#[test]
fn preemption_off_runs_high_priority_last() {
    // Same workload with preemption off: priorities are ignored for
    // suspension, so HIGH waits for LOW's full 44 ms schedule and
    // blows its deadline — the contrast the fig_qos experiment plots.
    let (out, jobs) = run(PreemptionMode::Off, SimTime::from_us(10_000));
    let report = validate(&out, &jobs);
    assert_fired(&report, "qos-accounting");
    let c = out.trace.counts();
    assert_eq!(c.preemptions, 0);
    assert_eq!(c.resumes, 0);
    let q = &out.stats.qos;
    assert_eq!(q.deadline_misses, 1, "HIGH finishes only after LOW");
    assert!(q.tardiness_total > SimDuration::ZERO);
}

#[test]
fn higher_priority_arrival_preempts_the_preemptor() {
    // A third, even higher-priority job lands while HIGH runs: the
    // suspended stack holds [LOW, HIGH] (priority increasing toward
    // the top) and must unwind LIFO.
    let cfg = ManagerConfig::paper_default().with_preemption(PreemptionMode::Checkpoint);
    let mut js = jobs(SimTime::from_us(10_000));
    let mut b = TaskGraphBuilder::new("TOP");
    b.node("T1", ConfigId(30), SimDuration::from_ms(3));
    let top = Arc::new(b.build().expect("single node is valid"));
    js.push(
        JobSpec::new(top)
            .with_arrival(SimTime::from_us(15_000))
            .with_qos(QosClass::priority(9)),
    );
    let out = simulate(&cfg, &js, &mut LruPolicy::new()).expect("schedule completes");
    let report = validate(&out, &js);
    assert_fired(&report, "preemption-order");
    assert_fired(&report, "no-lost-work");
    let c = out.trace.counts();
    assert_eq!(c.preemptions, 2);
    assert_eq!(c.resumes, 2);
    assert_eq!(out.stats.graph_completions.len(), 3);
}
