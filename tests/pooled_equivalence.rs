//! Pooled-engine determinism: a reused engine must be bit-exact with a
//! fresh one.
//!
//! The sweep-throughput overhaul reuses one [`Engine`] across cells and
//! replications (`reset_with_config` / `reset_replay`), pooling every
//! workload-sized allocation. Pooling must be *invisible*: for any
//! scenario — random template families, all policies, every arrival
//! process — the pooled run's [`RunStats`] and full [`Trace`] must equal
//! the fresh [`simulate`] run's, event for event. This property test
//! drives one engine through two different scenarios back to back and a
//! replay of the first, comparing each leg against a fresh engine.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reconfig_reuse::taskgraph::generate::{self, GenConfig};
use rtr_core::{
    compute_mobility, FifoPolicy, LfdPolicy, LfuPolicy, LruPolicy, MruPolicy, RandomPolicy,
};
use rtr_manager::{
    simulate, CheckContext, CheckerRegistry, Engine, FaultPlan, FirstCandidatePolicy, JobSpec,
    Lookahead, ManagerConfig, PreemptionMode, PrefetchConfig, QosClass, ReplacementPolicy,
    SimulationOutcome,
};
use rtr_sim::SimDuration;
use rtr_taskgraph::TaskGraph;
use rtr_workload::ArrivalProcess;
use std::sync::Arc;

/// One randomly drawn scenario: jobs (graphs + arrivals + annotations)
/// and the manager configuration implied by its policy.
#[derive(Debug, Clone)]
struct Scenario {
    jobs: Vec<JobSpec>,
    cfg: ManagerConfig,
    policy_id: u8,
    policy_seed: u64,
}

fn arrival_process(kind: u8) -> ArrivalProcess {
    match kind % 4 {
        0 => ArrivalProcess::Batch,
        1 => ArrivalProcess::Poisson {
            mean_gap_us: 40_000,
        },
        2 => ArrivalProcess::Periodic { period_us: 35_000 },
        _ => ArrivalProcess::Bursty {
            size: 3,
            mean_gap_us: 150_000,
        },
    }
}

/// Builds the policy for `id` (fresh state every call).
fn build_policy(id: u8, seed: u64) -> Box<dyn ReplacementPolicy> {
    match id % 8 {
        0 => Box::new(FirstCandidatePolicy),
        1 => Box::new(LruPolicy::new()),
        2 => Box::new(FifoPolicy::new()),
        3 => Box::new(MruPolicy::new()),
        4 => Box::new(LfuPolicy::new()),
        5 => Box::new(RandomPolicy::new(seed)),
        6 => Box::new(LfdPolicy::local(1 + (seed % 3) as usize)),
        _ => Box::new(LfdPolicy::oracle()),
    }
}

fn lookahead_for(id: u8, seed: u64) -> Lookahead {
    match id % 8 {
        6 => Lookahead::Graphs(1 + (seed % 3) as usize),
        7 => Lookahead::All,
        _ => Lookahead::None,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_scenario(
    seed: u64,
    templates: usize,
    apps: usize,
    rus: usize,
    arrivals_kind: u8,
    policy_id: u8,
    with_mobility: bool,
    prefetch_depth: usize,
) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen_cfg = GenConfig {
        exec_us: (1_000, 25_000),
        config_base: 50,
        config_pool: Some(10),
    };
    let family: Vec<Arc<TaskGraph>> = generate::template_family(&mut rng, templates, &gen_cfg)
        .into_iter()
        .map(Arc::new)
        .collect();
    let cfg = ManagerConfig::paper_default()
        .with_rus(rus)
        .with_lookahead(lookahead_for(policy_id, seed))
        .with_skip_events(with_mobility)
        .with_prefetch(PrefetchConfig::with_depth(prefetch_depth))
        .with_trace(true);
    let arrivals = arrival_process(arrivals_kind).generate(apps, seed ^ 0x5EED);
    let jobs: Vec<JobSpec> = (0..apps)
        .map(|i| {
            let graph = Arc::clone(&family[i % family.len()]);
            let mut job = JobSpec::new(Arc::clone(&graph)).with_arrival(arrivals[i]);
            if with_mobility {
                let mobility = Arc::new(compute_mobility(&graph, &cfg).expect("mobility computes"));
                job = job.with_mobility(mobility);
            }
            job
        })
        .collect();
    Scenario {
        jobs,
        cfg,
        policy_id,
        policy_seed: seed,
    }
}

fn run_fresh(s: &Scenario) -> SimulationOutcome {
    let mut policy = build_policy(s.policy_id, s.policy_seed);
    simulate(&s.cfg, &s.jobs, policy.as_mut()).expect("scenario completes")
}

fn run_pooled(engine: &mut Engine, s: &Scenario) -> SimulationOutcome {
    let mut policy = build_policy(s.policy_id, s.policy_seed);
    policy.reset();
    engine.reset_with_config(&s.cfg, &s.jobs);
    engine.run(policy.as_mut());
    engine.outcome().expect("scenario completes")
}

/// The bit-exactness claim is the registry's `pooled-identity` checker
/// (field-level counter pins first — naming the leaked counter — then
/// full stats, then the first diverging trace event), run here with the
/// fresh outcome as the reference. The same implementation backs the
/// vopr fuzz harness's reset/retarget/replay lifecycles.
fn assert_same(pooled: &SimulationOutcome, fresh: &SimulationOutcome, s: &Scenario, leg: &str) {
    let cx = CheckContext::new(
        &pooled.trace,
        &s.jobs,
        s.cfg.device.reconfig_latency,
        Some(&pooled.stats),
    )
    .with_reference(fresh)
    .with_prefetch_depth(s.cfg.prefetch.depth)
    .with_fault_plan(&s.cfg.faults);
    let report = CheckerRegistry::standard().run(&cx);
    assert!(
        report.is_clean(),
        "{leg}: pooled run diverged from fresh:\n{}",
        report.render()
    );
}

/// Resetting a pooled engine to an *empty* batch must not leak the
/// previous batch's memoised ideal makespan (regression: `submit`
/// invalidated the memo per job, so zero jobs skipped invalidation).
#[test]
fn reset_to_empty_batch_matches_fresh_empty_run() {
    let s = build_scenario(7, 2, 5, 4, 0, 1, false, 0);
    let empty = Scenario {
        jobs: Vec::new(),
        ..s.clone()
    };
    let fresh_empty = run_fresh(&empty);
    let mut engine = Engine::new(&s.cfg);
    let _ = run_pooled(&mut engine, &s);
    let pooled_empty = run_pooled(&mut engine, &empty);
    assert_same(
        &pooled_empty,
        &fresh_empty,
        &empty,
        "empty batch after a full one",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One engine, two different scenarios back to back, then a replay
    /// of the first: every leg bit-exact with a fresh engine. Scenario
    /// B may enable the prefetcher, so its per-RU flags, counters and
    /// the speculative slot are exercised across resets/retargets too.
    #[test]
    fn pooled_engine_is_bit_exact_with_fresh(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        apps_a in 1usize..20,
        apps_b in 1usize..20,
        rus_a in 1usize..7,
        rus_b in 1usize..7,
        arrivals_a in 0u8..4,
        arrivals_b in 0u8..4,
        policy_a in 0u8..8,
        policy_b in 0u8..8,
        depth_b in 0usize..4,
    ) {
        let templates = 1 + (seed_a % 3) as usize;
        let a = build_scenario(seed_a, templates, apps_a, rus_a, arrivals_a, policy_a, false, 0);
        let b = build_scenario(seed_b, templates, apps_b, rus_b, arrivals_b, policy_b, false, depth_b);
        let fresh_a = run_fresh(&a);
        let fresh_b = run_fresh(&b);

        let mut engine = Engine::new(&a.cfg);
        let pooled_a = run_pooled(&mut engine, &a);
        assert_same(&pooled_a, &fresh_a, &a, "scenario A on a fresh pool");
        // Different config, jobs, policy — the pool must not leak.
        let pooled_b = run_pooled(&mut engine, &b);
        assert_same(&pooled_b, &fresh_b, &b, "scenario B after A");
        // Replay: same jobs re-armed without re-submission.
        let mut policy = build_policy(b.policy_id, b.policy_seed);
        policy.reset();
        engine.reset_replay();
        engine.run(policy.as_mut());
        let replay_b = engine.outcome().expect("replay completes");
        assert_same(&replay_b, &fresh_b, &b, "scenario B replayed");
        // And back to A, exercising a config retarget after a replay.
        let pooled_a2 = run_pooled(&mut engine, &a);
        assert_same(&pooled_a2, &fresh_a, &a, "scenario A after replay of B");
    }


    /// With uniform default QoS no arrival can out-prioritise the
    /// current graph, so flipping the preemption knob to `Kill` or
    /// `Checkpoint` must be invisible: stats and trace bit-exact with
    /// the `Off` run (the tentpole's backward-compatibility contract).
    #[test]
    fn preemption_modes_invisible_with_default_qos(
        seed in any::<u64>(),
        apps in 1usize..16,
        rus in 1usize..7,
        arrivals in 0u8..4,
        policy in 0u8..8,
    ) {
        let templates = 1 + (seed % 3) as usize;
        let s = build_scenario(seed, templates, apps, rus, arrivals, policy, false, 0);
        let fresh_off = run_fresh(&s);
        for mode in [PreemptionMode::Kill, PreemptionMode::Checkpoint] {
            let mut armed = s.clone();
            armed.cfg = armed.cfg.with_preemption(mode);
            let mut engine = Engine::new(&armed.cfg);
            let pooled = run_pooled(&mut engine, &armed);
            assert_same(&pooled, &fresh_off, &armed, "armed preemption, default QoS");
        }
    }

    /// QoS workloads (priority lanes, deadlines, live preemptions)
    /// through the pooled engine: bit-exact with a fresh engine on the
    /// first run *and* on a warm replay, so the suspended stack, the
    /// execution tokens and the QoS ledgers all reset cleanly.
    #[test]
    fn pooled_engine_is_bit_exact_with_fresh_under_qos(
        seed in any::<u64>(),
        apps in 2usize..14,
        rus in 1usize..6,
        arrivals in 0u8..4,
        policy in 0u8..8,
        mode in 0u8..3,
    ) {
        let templates = 1 + (seed % 3) as usize;
        let mut s = build_scenario(seed, templates, apps, rus, arrivals, policy, false, 0);
        s.cfg = s.cfg.with_preemption(match mode {
            0 => PreemptionMode::Off,
            1 => PreemptionMode::Kill,
            _ => PreemptionMode::Checkpoint,
        });
        for (i, job) in s.jobs.iter_mut().enumerate() {
            let r = seed.rotate_left(i as u32 * 7) ^ i as u64;
            let mut qos = QosClass::priority((r % 4) as u8);
            if r.is_multiple_of(3) {
                qos = qos.with_deadline(
                    job.arrival + SimDuration::from_us(10_000 + (r % 200_000)),
                );
            }
            job.qos = qos;
        }
        let fresh = run_fresh(&s);
        let mut engine = Engine::new(&s.cfg);
        let pooled = run_pooled(&mut engine, &s);
        assert_same(&pooled, &fresh, &s, "QoS scenario on a fresh pool");
        let mut policy = build_policy(s.policy_id, s.policy_seed);
        policy.reset();
        engine.reset_replay();
        engine.run(policy.as_mut());
        let replay = engine.outcome().expect("replay completes");
        assert_same(&replay, &fresh, &s, "QoS scenario replayed");
    }

    /// Warm-start: an adjacent-cell knob walk over one pooled engine.
    /// Every leg must be bit-exact with a fresh engine, and on eligible
    /// shapes (batch arrivals, default QoS, prefetch off, preemption
    /// off, a keyed policy) the walk must actually take the warm path:
    /// an identical re-run replays the full log, one-job-adjacent
    /// batches restore a checkpoint prefix, and an ineligible detour
    /// cell neither hits nor corrupts the sealed reference.
    #[test]
    fn warm_start_walk_is_bit_exact_and_hits(
        seed in any::<u64>(),
        apps0 in 2usize..10,
        rus in 1usize..7,
        policy in 0u8..8,
        depth_detour in 0usize..3,
        preempt_detour in 0u8..3,
    ) {
        let base = build_scenario(seed, 1 + (seed % 3) as usize, apps0 + 2, rus, 0, policy, false, 0);
        // Legs share the base jobs' Arcs — truncation, not rebuilding,
        // is what makes adjacent batches recognisably the same specs.
        let leg = |n: usize| Scenario { jobs: base.jobs[..n].to_vec(), ..base.clone() };
        let keyed = policy % 8 != 5; // RandomPolicy opts out of warm keys
        let window0 = matches!(lookahead_for(policy, seed), Lookahead::None);

        let mut engine = Engine::new(&base.cfg);
        let a = leg(apps0);
        let fresh_a = run_fresh(&a);
        let pooled = run_pooled(&mut engine, &a);
        assert_same(&pooled, &fresh_a, &a, "warm walk: cold leg");
        prop_assert!(!engine.warm_stats().last_was_hit);

        // Identical batch: a keyed policy replays the whole log.
        let pooled = run_pooled(&mut engine, &a);
        assert_same(&pooled, &fresh_a, &a, "warm walk: identical re-run");
        prop_assert_eq!(
            engine.warm_stats().last_was_hit, keyed,
            "an identical re-run must fully hit iff the policy is keyed"
        );
        if keyed {
            prop_assert_eq!(engine.warm_stats().full_hits, 1);
            prop_assert_eq!(engine.warm_stats().last_divergence_depth, apps0);
        }

        // One job appended: with the whole prefix visible (window 0)
        // the run must restore a checkpoint instead of starting cold.
        let b = leg(apps0 + 1);
        let fresh_b = run_fresh(&b);
        let pooled = run_pooled(&mut engine, &b);
        assert_same(&pooled, &fresh_b, &b, "warm walk: one job appended");
        if keyed && window0 {
            prop_assert!(
                engine.warm_stats().last_was_hit,
                "appending one job to a window-0 batch must prefix-hit"
            );
            let depth = engine.warm_stats().last_divergence_depth;
            prop_assert!((1..=apps0).contains(&depth));
        }

        // Shrink back: the common prefix still restores.
        let pooled = run_pooled(&mut engine, &a);
        assert_same(&pooled, &fresh_a, &a, "warm walk: shrink back");
        if keyed && window0 {
            prop_assert!(engine.warm_stats().last_was_hit);
        }

        // Detour through a possibly-ineligible cell (prefetch on and/or
        // preemption armed): runs cold, stays bit-exact, and must not
        // corrupt the sealed reference.
        let mut d = leg(apps0);
        d.cfg = d.cfg
            .with_prefetch(PrefetchConfig::with_depth(depth_detour))
            .with_preemption(match preempt_detour {
                0 => PreemptionMode::Off,
                1 => PreemptionMode::Kill,
                _ => PreemptionMode::Checkpoint,
            });
        let detour_differs = d.cfg != a.cfg;
        let fresh_d = run_fresh(&d);
        let pooled = run_pooled(&mut engine, &d);
        assert_same(&pooled, &fresh_d, &d, "warm walk: detour cell");
        if detour_differs {
            prop_assert!(!engine.warm_stats().last_was_hit);
        }

        // Return to the base cell: the reference sealed before the
        // detour must still hit in full.
        let pooled = run_pooled(&mut engine, &a);
        assert_same(&pooled, &fresh_a, &a, "warm walk: return after detour");
        if keyed {
            prop_assert!(
                engine.warm_stats().last_was_hit,
                "the detour must not invalidate the sealed reference"
            );
        }

        // Fault-injecting detour: a non-empty fault plan is never
        // warm-recordable, so the cell runs cold — but it must stay
        // bit-exact with a fresh fault run and leave no residue.
        let mut f = leg(apps0);
        f.cfg = base.cfg.clone().with_faults(FaultPlan::low(seed));
        let fresh_f = run_fresh(&f);
        let pooled = run_pooled(&mut engine, &f);
        assert_same(&pooled, &fresh_f, &f, "warm walk: fault-injecting detour");
        prop_assert!(
            !engine.warm_stats().last_was_hit,
            "a fault-active cell must never take the warm path"
        );

        // Return once more: the fault detour must not have perturbed
        // or invalidated the sealed fault-off reference either.
        let pooled = run_pooled(&mut engine, &a);
        assert_same(&pooled, &fresh_a, &a, "warm walk: return after fault detour");
        if keyed {
            prop_assert!(
                engine.warm_stats().last_was_hit,
                "the fault detour must not invalidate the sealed reference"
            );
        }
    }

    /// Skip Events (mobility-annotated jobs, the paper's Fig. 8 steps
    /// 4–5) through the pooled engine: bit-exact with fresh, including
    /// the skip counters in the trace.
    #[test]
    fn pooled_engine_matches_fresh_with_skip_events(
        seed in any::<u64>(),
        apps in 1usize..12,
        rus in 2usize..6,
        arrivals in 0u8..4,
        window in 1usize..4,
        depth in 0usize..3,
    ) {
        let mut s = build_scenario(seed, 2, apps, rus, arrivals, 6, true, depth);
        s.cfg = s.cfg.with_lookahead(Lookahead::Graphs(window));
        let fresh = {
            let mut p = LfdPolicy::local_with_skip(window);
            simulate(&s.cfg, &s.jobs, &mut p).expect("scenario completes")
        };
        let mut engine = Engine::new(&s.cfg);
        // Two consecutive pooled runs: first exercises a cold pool,
        // second a warm replay.
        for leg in ["cold pooled run", "warm replay"] {
            let mut p = LfdPolicy::local_with_skip(window);
            p.reset();
            if leg == "cold pooled run" {
                engine.reset_with_config(&s.cfg, &s.jobs);
            } else {
                engine.reset_replay();
            }
            engine.run_with(&mut p);
            let pooled = engine.outcome().expect("scenario completes");
            assert_same(&pooled, &fresh, &s, leg);
        }
    }
}
