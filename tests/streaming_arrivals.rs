//! Streaming-engine system tests.
//!
//! The batch-equivalence invariant: running the paper's job sets
//! through the streaming `Engine` with every arrival at t = 0 must
//! reproduce the golden Fig. 2/3 numbers bit for bit (`simulate` is
//! that wrapper, so these go through `Engine` explicitly). On top,
//! streaming-only behaviour: idle/resume across arrival gaps,
//! arrival-order activation, and trace validity under random feeds.

use reconfig_reuse::prelude::*;
use reconfig_reuse::workload::arrivals::ArrivalProcess;
use rtr_manager::validate::assert_valid;
use rtr_manager::{Engine, FirstCandidatePolicy};
use std::sync::Arc;

fn ms(x: u64) -> SimDuration {
    SimDuration::from_ms(x)
}

/// Fig. 2 workload: TG1, TG2, TG2, TG1, TG2 (12 task executions).
fn fig2_jobs() -> Vec<JobSpec> {
    let tg1 = Arc::new(taskgraph::benchmarks::fig2_tg1());
    let tg2 = Arc::new(taskgraph::benchmarks::fig2_tg2());
    [&tg1, &tg2, &tg2, &tg1, &tg2]
        .iter()
        .map(|g| JobSpec::new(Arc::clone(g)))
        .collect()
}

fn stream(cfg: &ManagerConfig, jobs: &[JobSpec], policy: &mut dyn ReplacementPolicy) -> RunStats {
    policy.reset();
    let mut engine = Engine::new(cfg);
    for job in jobs {
        engine.submit(job.clone());
    }
    engine.run(policy);
    let out = engine.finish().expect("streamed jobs complete");
    assert_valid(
        &out.trace,
        jobs,
        cfg.device.reconfig_latency,
        Some(&out.stats),
    );
    out.stats
}

#[test]
fn batch_equivalence_fig2_golden_numbers() {
    // All arrivals at t = 0 through the streaming engine must hit the
    // paper's exact Fig. 2 numbers (LRU 2/12 & 22 ms, LFD 5/12 & 11 ms,
    // Local LFD (1) 5/12 & 15 ms).
    let jobs = fig2_jobs();
    let base = ManagerConfig::paper_default();

    let lru = stream(
        &base.clone().with_lookahead(Lookahead::None),
        &jobs,
        &mut LruPolicy::new(),
    );
    assert_eq!((lru.reuses, lru.total_overhead()), (2, ms(22)));

    let lfd = stream(
        &base.clone().with_lookahead(Lookahead::All),
        &jobs,
        &mut LfdPolicy::oracle(),
    );
    assert_eq!((lfd.reuses, lfd.total_overhead()), (5, ms(11)));

    let local = stream(
        &base.with_lookahead(Lookahead::Graphs(1)),
        &jobs,
        &mut LfdPolicy::local(1),
    );
    assert_eq!((local.reuses, local.total_overhead()), (5, ms(15)));
}

#[test]
fn batch_equivalence_matches_simulate_exactly() {
    // Engine-with-zero-arrivals and `simulate` are the same machine:
    // identical stats *and* identical traces on a mixed workload.
    let jobs: Vec<JobSpec> = [
        taskgraph::benchmarks::jpeg(),
        taskgraph::benchmarks::mpeg1(),
        taskgraph::benchmarks::hough(),
        taskgraph::benchmarks::jpeg(),
    ]
    .into_iter()
    .map(|g| JobSpec::new(Arc::new(g)))
    .collect();
    let cfg = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(2));

    let batch = manager::simulate(&cfg, &jobs, &mut LfdPolicy::local(2)).unwrap();

    let mut policy = LfdPolicy::local(2);
    policy.reset();
    let mut engine = Engine::new(&cfg);
    for job in &jobs {
        engine.submit(job.clone());
    }
    engine.run(&mut policy);
    let streamed = engine.finish().unwrap();

    assert_eq!(batch.stats, streamed.stats);
    assert_eq!(batch.trace, streamed.trace);
}

#[test]
fn idle_gap_preserves_residency_for_reuse() {
    // Two identical JPEGs separated by a long silent gap: the manager
    // idles, keeps the configurations resident, and the second instance
    // reuses everything on resume.
    let g = Arc::new(taskgraph::benchmarks::jpeg());
    let jobs = vec![
        JobSpec::new(Arc::clone(&g)),
        JobSpec::new(g).with_arrival(SimTime::from_ms(500)),
    ];
    let stats = stream(
        &ManagerConfig::paper_default(),
        &jobs,
        &mut FirstCandidatePolicy,
    );
    assert_eq!(stats.reuses, 4);
    assert_eq!(stats.makespan, ms(500 + 79));
    assert_eq!(stats.mean_sojourn_ms(), (83.0 + 79.0) / 2.0);
}

#[test]
fn arrival_order_overrides_submission_order() {
    let jobs = vec![
        JobSpec::new(Arc::new(taskgraph::benchmarks::jpeg())).with_arrival(SimTime::from_ms(90)),
        JobSpec::new(Arc::new(taskgraph::benchmarks::mpeg1())).with_arrival(SimTime::from_ms(40)),
    ];
    // assert_valid checks activation order against arrival order.
    let stats = stream(
        &ManagerConfig::paper_default(),
        &jobs,
        &mut FirstCandidatePolicy,
    );
    assert_eq!(
        stats.graph_arrivals,
        vec![SimTime::from_ms(40), SimTime::from_ms(90)]
    );
}

#[test]
fn random_feeds_produce_valid_deterministic_schedules() {
    // Every arrival distribution yields a schedule that passes the full
    // invariant validator and reproduces across runs.
    let templates: Vec<Arc<TaskGraph>> = [
        taskgraph::benchmarks::jpeg(),
        taskgraph::benchmarks::mpeg1(),
        taskgraph::benchmarks::hough(),
    ]
    .into_iter()
    .map(Arc::new)
    .collect();
    let cfg = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(1));
    for process in [
        ArrivalProcess::Poisson {
            mean_gap_us: 30_000,
        },
        ArrivalProcess::Periodic { period_us: 45_000 },
        ArrivalProcess::Bursty {
            size: 5,
            mean_gap_us: 200_000,
        },
    ] {
        let arrivals = process.generate(25, 13);
        let jobs: Vec<JobSpec> = (0..25)
            .map(|i| JobSpec::new(Arc::clone(&templates[i % 3])).with_arrival(arrivals[i]))
            .collect();
        let expected: u64 = jobs.iter().map(|j| j.graph.len() as u64).sum();
        let a = stream(&cfg, &jobs, &mut LfdPolicy::local(1));
        let b = stream(&cfg, &jobs, &mut LfdPolicy::local(1));
        assert_eq!(a, b, "non-deterministic schedule under {process:?}");
        assert_eq!(a.executed, expected);
    }
}
