//! Cross-policy invariants on the paper's multimedia workload: the
//! qualitative claims of §VI, asserted on seed-aggregated results so
//! individual-run noise cannot flip them.

use reconfig_reuse::prelude::*;
use reconfig_reuse::workload::{
    runner::{run_cell, CellConfig},
    PolicyKind, SequenceModel,
};
use std::sync::Arc;

fn sequences(apps: usize) -> Vec<Vec<Arc<TaskGraph>>> {
    let templates: Vec<Arc<TaskGraph>> = taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    [101u64, 202, 303]
        .iter()
        .map(|&s| SequenceModel::UniformRandom.generate(&templates, apps, s))
        .collect()
}

fn total_reuses(kind: PolicyKind, rus: usize, seqs: &[Vec<Arc<TaskGraph>>]) -> u64 {
    seqs.iter()
        .map(|s| {
            run_cell(s, &CellConfig::new(kind, rus))
                .expect("cell simulates")
                .stats
                .reuses
        })
        .sum()
}

fn total_overhead_ms(kind: PolicyKind, rus: usize, seqs: &[Vec<Arc<TaskGraph>>]) -> f64 {
    seqs.iter()
        .map(|s| {
            run_cell(s, &CellConfig::new(kind, rus))
                .expect("cell simulates")
                .stats
                .total_overhead()
                .as_ms_f64()
        })
        .sum()
}

#[test]
fn lfd_reuse_dominates_history_policies() {
    // "LRU achieves poor reuse rates with respect to the optimal
    // results of LFD" — and LFD beats every history baseline.
    let seqs = sequences(150);
    for rus in [4usize, 6, 8] {
        let lfd = total_reuses(PolicyKind::Lfd, rus, &seqs);
        for baseline in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Mru,
            PolicyKind::Lfu,
            PolicyKind::Random { seed: 5 },
        ] {
            let other = total_reuses(baseline, rus, &seqs);
            assert!(
                lfd >= other,
                "{} RUs: LFD reuse {lfd} < {} reuse {other}",
                rus,
                baseline.label()
            );
        }
    }
}

#[test]
fn local_lfd_reuse_grows_with_dynamic_list() {
    // "the more task graphs are stored in DL, the better Local LFD
    // works" (aggregate, small tolerance for plateau ties).
    let seqs = sequences(150);
    for rus in [5usize, 7, 9] {
        let mut prev = 0u64;
        for w in [1usize, 2, 4] {
            let reuse = total_reuses(
                PolicyKind::LocalLfd {
                    window: w,
                    skip: false,
                },
                rus,
                &seqs,
            );
            assert!(
                reuse + 5 >= prev,
                "{rus} RUs: reuse dropped from {prev} to {reuse} at window {w}"
            );
            prev = prev.max(reuse);
        }
        let lfd = total_reuses(PolicyKind::Lfd, rus, &seqs);
        assert!(
            lfd + 5 >= prev,
            "{rus} RUs: Local LFD (4) {prev} exceeds oracle {lfd} by more than tolerance"
        );
    }
}

#[test]
fn skip_events_raise_reuse_beyond_the_oracle() {
    // The paper's headline Fig. 9b effect: "Local LFD (1) + Skip Events
    // reuses 48.19% of the tasks, whereas for LFD this rate is 44.38%"
    // — legal because LFD cannot delay reconfigurations.
    let seqs = sequences(200);
    let mut skip_total = 0u64;
    let mut plain_total = 0u64;
    let mut oracle_total = 0u64;
    for rus in [4usize, 5, 6, 7] {
        skip_total += total_reuses(
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            rus,
            &seqs,
        );
        plain_total += total_reuses(
            PolicyKind::LocalLfd {
                window: 1,
                skip: false,
            },
            rus,
            &seqs,
        );
        oracle_total += total_reuses(PolicyKind::Lfd, rus, &seqs);
    }
    assert!(
        skip_total > plain_total,
        "skip {skip_total} should beat plain ASAP {plain_total}"
    );
    assert!(
        skip_total > oracle_total,
        "skip {skip_total} should beat the no-delay oracle {oracle_total}"
    );
}

#[test]
fn overhead_shrinks_as_rus_grow() {
    // Fig. 9c: "this important overhead can be reduced if we increase
    // the number of RUs" — aggregate overhead at 10 RUs is below 4 RUs
    // for every policy family.
    let seqs = sequences(150);
    for kind in [
        PolicyKind::Lru,
        PolicyKind::LocalLfd {
            window: 1,
            skip: true,
        },
        PolicyKind::Lfd,
    ] {
        let small = total_overhead_ms(kind, 4, &seqs);
        let large = total_overhead_ms(kind, 10, &seqs);
        assert!(
            large < small,
            "{}: overhead at 10 RUs ({large}) not below 4 RUs ({small})",
            kind.label()
        );
    }
}

#[test]
fn skip_events_reduce_overhead_under_high_competition() {
    // The design-time no-degradation guarantee is per-graph *in
    // isolation*; in a dynamic sequence reuse shifts the event
    // structure, so a skip can cost time. The paper observes exactly
    // this: at 4 RUs ("extremely high competition") Skip Events reduce
    // the remaining overhead below even LFD's, while "as the number of
    // RUs grows ... LFD is powerful enough to outperform Local LFD".
    // Assert the 4-RU win strictly and bound the high-RU give-back.
    let seqs = sequences(200);
    let plain4 = total_overhead_ms(
        PolicyKind::LocalLfd {
            window: 1,
            skip: false,
        },
        4,
        &seqs,
    );
    let skip4 = total_overhead_ms(
        PolicyKind::LocalLfd {
            window: 1,
            skip: true,
        },
        4,
        &seqs,
    );
    let lfd4 = total_overhead_ms(PolicyKind::Lfd, 4, &seqs);
    assert!(
        skip4 <= plain4,
        "4 RUs: skip overhead {skip4} ms exceeds ASAP {plain4} ms"
    );
    assert!(
        skip4 <= lfd4,
        "4 RUs: skip overhead {skip4} ms exceeds LFD {lfd4} ms (paper's inversion)"
    );
    // At larger RU counts the reuse-for-makespan trade gives back some
    // overhead (EXPERIMENTS.md records ~25% at 8 RUs); bound the
    // give-back so a regression cannot silently blow it up.
    for rus in [6usize, 8] {
        let plain = total_overhead_ms(
            PolicyKind::LocalLfd {
                window: 1,
                skip: false,
            },
            rus,
            &seqs,
        );
        let skip = total_overhead_ms(
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            rus,
            &seqs,
        );
        assert!(
            skip <= plain * 1.35,
            "{rus} RUs: skip overhead {skip} ms exceeds ASAP {plain} ms by more than 35%"
        );
    }
}

#[test]
fn energy_tracks_reuse() {
    // Fewer loads = proportionally less reconfiguration energy.
    let seqs = sequences(100);
    let seq = &seqs[0];
    let lru = run_cell(seq, &CellConfig::new(PolicyKind::Lru, 6)).unwrap();
    let lfd = run_cell(seq, &CellConfig::new(PolicyKind::Lfd, 6)).unwrap();
    assert!(lfd.stats.reuses > lru.stats.reuses);
    assert!(lfd.stats.traffic.energy_uj < lru.stats.traffic.energy_uj);
    assert_eq!(
        lfd.stats.traffic.energy_uj,
        lfd.stats.loads * DeviceSpec::paper_default().energy_per_load_uj
    );
}
