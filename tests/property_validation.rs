//! Property-based system tests: random workloads through every policy,
//! every resulting schedule checked against the full trace validator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reconfig_reuse::prelude::*;
use reconfig_reuse::taskgraph::generate::{self, GenConfig};
use rtr_manager::validate::validate_trace;
use rtr_manager::FirstCandidatePolicy;
use std::sync::Arc;

/// A random workload: a family of templates and an instance sequence.
#[derive(Debug, Clone)]
struct Workload {
    jobs: Vec<JobSpec>,
    rus: usize,
}

fn build_workload(seed: u64, templates: usize, apps: usize, rus: usize, shared: bool) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = GenConfig {
        exec_us: (1_000, 30_000),
        config_base: 100,
        config_pool: if shared { Some(12) } else { None },
    };
    let family = generate::template_family(&mut rng, templates, &cfg);
    let family: Vec<Arc<TaskGraph>> = family.into_iter().map(Arc::new).collect();
    let jobs = (0..apps)
        .map(|i| JobSpec::new(Arc::clone(&family[i % family.len()])))
        .collect();
    Workload { jobs, rus }
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        any::<u64>(),
        1usize..5,
        1usize..18,
        1usize..8,
        any::<bool>(),
    )
        .prop_map(|(seed, templates, apps, rus, shared)| {
            build_workload(seed, templates, apps, rus, shared)
        })
}

fn policies() -> Vec<Box<dyn ReplacementPolicy>> {
    vec![
        Box::new(FirstCandidatePolicy),
        Box::new(LruPolicy::new()),
        Box::new(FifoPolicy::new()),
        Box::new(MruPolicy::new()),
        Box::new(LfuPolicy::new()),
        Box::new(RandomPolicy::new(99)),
        Box::new(LfdPolicy::local(1)),
        Box::new(LfdPolicy::local(3)),
        Box::new(LfdPolicy::oracle()),
    ]
}

fn lookahead_for(name: &str) -> Lookahead {
    if name == "LFD" {
        Lookahead::All
    } else if name.starts_with("Local LFD (1)") {
        Lookahead::Graphs(1)
    } else if name.starts_with("Local LFD (3)") {
        Lookahead::Graphs(3)
    } else {
        Lookahead::None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_produces_valid_schedules(w in arb_workload()) {
        for mut policy in policies() {
            let cfg = ManagerConfig::paper_default()
                .with_rus(w.rus)
                .with_lookahead(lookahead_for(policy.name()));
            let out = manager::simulate(&cfg, &w.jobs, policy.as_mut())
                .expect("workloads complete");
            let violations = validate_trace(
                &out.trace,
                &w.jobs,
                cfg.device.reconfig_latency,
                Some(&out.stats),
            );
            prop_assert!(
                violations.is_empty(),
                "policy {} violated invariants: {:?}",
                out.stats.policy,
                violations
            );
            // Accounting identities.
            prop_assert_eq!(out.stats.loads + out.stats.reuses, out.stats.executed);
            prop_assert!(out.stats.makespan >= out.stats.ideal_makespan);
        }
    }

    #[test]
    fn simulations_are_deterministic(w in arb_workload()) {
        let cfg = ManagerConfig::paper_default()
            .with_rus(w.rus)
            .with_lookahead(Lookahead::Graphs(2));
        let a = manager::simulate(&cfg, &w.jobs, &mut LfdPolicy::local(2)).unwrap();
        let b = manager::simulate(&cfg, &w.jobs, &mut LfdPolicy::local(2)).unwrap();
        prop_assert_eq!(a.stats.makespan, b.stats.makespan);
        prop_assert_eq!(a.stats.reuses, b.stats.reuses);
        prop_assert_eq!(a.trace.events, b.trace.events);
    }

    #[test]
    fn no_reuse_baseline_reloads_everything(w in arb_workload()) {
        let cfg = ManagerConfig::paper_default()
            .with_rus(w.rus)
            .with_reuse(false);
        let out = manager::simulate(&cfg, &w.jobs, &mut FirstCandidatePolicy).unwrap();
        prop_assert_eq!(out.stats.reuses, 0);
        prop_assert_eq!(out.stats.loads, out.stats.executed);
    }

    #[test]
    fn mobility_annotation_is_jointly_feasible(seed in any::<u64>(), kind in 0u8..4) {
        // On arbitrary generated graphs the full mobility assignment
        // must reproduce the reference makespan when applied as forced
        // delays (the Fig. 6 feasibility condition).
        let mut rng = StdRng::seed_from_u64(seed);
        let gen_cfg = GenConfig::default();
        let graph = Arc::new(match kind {
            0 => generate::chain(&mut rng, "c", 5, &gen_cfg),
            1 => generate::fork_join(&mut rng, "fj", 3, &gen_cfg),
            2 => generate::layered(&mut rng, "ly", 3, 3, 0.5, &gen_cfg),
            _ => generate::series_parallel(&mut rng, "sp", 6, &gen_cfg),
        });
        let cfg = ManagerConfig::paper_default();
        let mobility = compute_mobility(&graph, &cfg).expect("mobility computes");

        let reference = manager::simulate(
            &cfg,
            &[JobSpec::new(Arc::clone(&graph))],
            &mut FirstCandidatePolicy,
        )
        .unwrap()
        .stats
        .makespan;
        let delayed = manager::simulate(
            &cfg,
            &[JobSpec::new(Arc::clone(&graph)).with_forced_delays(Arc::new(mobility))],
            &mut FirstCandidatePolicy,
        )
        .unwrap()
        .stats
        .makespan;
        prop_assert_eq!(delayed, reference);
    }

    #[test]
    fn gantt_rendering_never_panics(w in arb_workload()) {
        let cfg = ManagerConfig::paper_default().with_rus(w.rus);
        let out = manager::simulate(&cfg, &w.jobs, &mut LruPolicy::new()).unwrap();
        let chart = out.trace.to_gantt(w.rus).render();
        prop_assert!(chart.contains("RU1"));
    }
}
