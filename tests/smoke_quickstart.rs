//! Smoke test guarding the README / `examples/quickstart.rs` code path.
//!
//! Mirrors the quickstart example statement for statement (the example
//! itself is compiled by `cargo test` alongside this suite, so both the
//! build and the behavior of the advertised entry point are guarded):
//! two multimedia applications interleaved on 6 RUs must complete, and
//! Local LFD must report strictly positive reuse — the paper's headline
//! effect and the number the quickstart prints.

use reconfig_reuse::prelude::*;
use std::sync::Arc;

#[test]
fn quickstart_reports_positive_reuse() {
    let jpeg = Arc::new(taskgraph::benchmarks::jpeg());
    let mpeg = Arc::new(taskgraph::benchmarks::mpeg1());
    let jobs: Vec<JobSpec> = [&jpeg, &mpeg, &jpeg, &mpeg]
        .iter()
        .map(|g| JobSpec::new(Arc::clone(g)))
        .collect();

    let cfg = ManagerConfig::paper_default()
        .with_rus(6)
        .with_lookahead(Lookahead::Graphs(1));

    let mut lru = LruPolicy::new();
    let lru_out = manager::simulate(
        &cfg.clone().with_lookahead(Lookahead::None),
        &jobs,
        &mut lru,
    )
    .expect("LRU simulation completes");

    let mut local_lfd = LfdPolicy::local(1);
    let lfd_out = manager::simulate(&cfg, &jobs, &mut local_lfd).expect("LFD simulation completes");

    // The quickstart's printed claims, as assertions.
    assert!(
        lfd_out.stats.reuses > 0,
        "quickstart must report reuses > 0, got {}",
        lfd_out.stats.reuses
    );
    assert!(lfd_out.stats.reuse_rate_pct() > 0.0);
    assert!(
        lfd_out.stats.reuses >= lru_out.stats.reuses,
        "Local LFD should reuse at least as much as LRU on the quickstart workload"
    );
    // The traffic figure the quickstart prints: one avoided
    // reconfiguration saves one bitstream of bus traffic.
    let saved = lfd_out.stats.traffic.reuses * cfg.device.bitstream_bytes;
    assert!(saved > 0, "positive reuse must save configuration traffic");
}
