//! Fault-injection invariants: randomised scenario × policy × fault
//! plan runs must validate clean through the full checker registry,
//! the empty plan must be invisible (byte-identical outcomes across
//! every engine lifecycle), a fault-active detour between warm-start
//! sweeps must not perturb the fault-off runs around it, and the
//! hand-built fault schedules (retry exhaustion, upset-then-repair,
//! quarantine of the last RU) must behave exactly as specified.

use proptest::prelude::*;
use rtr_manager::{
    simulate, CheckContext, CheckerRegistry, Engine, FaultPlan, JobSpec, ManagerConfig,
    PrefetchConfig, SimError, SimulationOutcome,
};
use rtr_sim::SimDuration;
use rtr_taskgraph::generate::{self, GenConfig};
use rtr_taskgraph::TaskGraph;
use rtr_workload::vopr::{build_policy, fault_plan};
use std::sync::Arc;

/// A small deterministic batch workload: `apps` jobs drawn from a
/// seeded template family, all arriving at t = 0.
fn batch_jobs(seed: u64, templates: usize, apps: usize) -> Vec<JobSpec> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let gen_cfg = GenConfig {
        exec_us: (1_000, 25_000),
        config_base: 50,
        config_pool: Some(8),
    };
    let family: Vec<Arc<TaskGraph>> = generate::template_family(&mut rng, templates, &gen_cfg)
        .into_iter()
        .map(Arc::new)
        .collect();
    (0..apps)
        .map(|i| JobSpec::new(Arc::clone(&family[i % family.len()])))
        .collect()
}

fn cfg_with(rus: usize, depth: usize, faults: FaultPlan) -> ManagerConfig {
    ManagerConfig::paper_default()
        .with_rus(rus)
        .with_prefetch(PrefetchConfig::with_depth(depth))
        .with_faults(faults)
        .with_trace(true)
}

fn run(cfg: &ManagerConfig, jobs: &[JobSpec], policy_id: u8, seed: u64) -> SimulationOutcome {
    let mut policy = build_policy(policy_id, seed);
    simulate(cfg, jobs, policy.as_mut()).expect("fault runs with finite repair complete")
}

fn outcome_bytes(out: &SimulationOutcome) -> (String, String) {
    (
        serde_json::to_string(&out.stats).expect("stats serialise"),
        serde_json::to_string(&out.trace).expect("trace serialises"),
    )
}

/// Validates one subject outcome through the full standard registry
/// (reference run included, so pooled-identity arms too) and panics
/// with the rendered report on any violation.
fn assert_validates_clean(
    cfg: &ManagerConfig,
    jobs: &[JobSpec],
    subject: &SimulationOutcome,
    policy_id: u8,
    seed: u64,
) {
    let mut reference_policy = build_policy(policy_id, seed);
    let reference = simulate(cfg, jobs, reference_policy.as_mut()).expect("reference completes");
    let cx = CheckContext::new(
        &subject.trace,
        jobs,
        cfg.device.reconfig_latency,
        Some(&subject.stats),
    )
    .with_reference(&reference)
    .with_prefetch_depth(cfg.prefetch.depth)
    .with_fault_plan(&cfg.faults);
    let report = CheckerRegistry::standard().run(&cx);
    assert!(
        report.is_clean(),
        "fault run violated invariants:\n{}",
        report.render()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random scenarios × policies × fault plans validate clean
    /// through every checker, including the four fault checkers.
    #[test]
    fn random_fault_runs_validate_clean(
        seed in 0u64..1_000_000,
        templates in 1usize..4,
        apps in 1usize..10,
        rus in 1usize..6,
        depth_idx in 0usize..4,
        policy_id in 0u8..8,
        rate in 1u8..3,
        mix in 0u8..4,
    ) {
        let jobs = batch_jobs(seed, templates, apps);
        let depth = [0usize, 1, 2, 4][depth_idx];
        let cfg = cfg_with(rus, depth, fault_plan(rate, mix, seed));
        let subject = run(&cfg, &jobs, policy_id, seed);
        assert_validates_clean(&cfg, &jobs, &subject, policy_id, seed);
    }

    /// The empty fault plan is invisible: a config that carries
    /// `FaultPlan::off()` explicitly produces byte-identical outcomes
    /// (stats *and* trace) to the plain config, across a fresh run and
    /// the pooled `reset` / `reset_with_config` / `reset_replay`
    /// lifecycles.
    #[test]
    fn empty_plan_is_byte_identical_across_lifecycles(
        seed in 0u64..1_000_000,
        apps in 1usize..10,
        rus in 1usize..6,
        policy_id in 0u8..8,
    ) {
        let jobs = batch_jobs(seed, 2, apps);
        let plain = cfg_with(rus, 2, FaultPlan::off());
        let explicit = plain.clone().with_faults(FaultPlan::off());
        let baseline = outcome_bytes(&run(&plain, &jobs, policy_id, seed));

        // Fresh.
        prop_assert_eq!(
            &outcome_bytes(&run(&explicit, &jobs, policy_id, seed)),
            &baseline
        );

        // Pooled reset (warm leg discarded).
        let mut engine = Engine::new(&explicit);
        for _ in 0..2 {
            let mut policy = build_policy(policy_id, seed);
            policy.reset();
            engine.reset(&jobs);
            engine.run(policy.as_mut());
            let out = engine.outcome().expect("completes");
            prop_assert_eq!(&outcome_bytes(&out), &baseline);
        }

        // Retarget from a different RU count.
        let warm_rus = if rus == 5 { 1 } else { rus + 1 };
        let mut engine = Engine::new(&explicit.clone().with_rus(warm_rus));
        let mut policy = build_policy(policy_id, seed);
        policy.reset();
        engine.reset(&jobs);
        engine.run(policy.as_mut());
        let _ = engine.outcome();
        let mut policy = build_policy(policy_id, seed);
        policy.reset();
        engine.reset_with_config(&explicit, &jobs);
        engine.run(policy.as_mut());
        prop_assert_eq!(
            &outcome_bytes(&engine.outcome().expect("completes")),
            &baseline
        );

        // Replay without re-submission.
        let mut policy = build_policy(policy_id, seed);
        policy.reset();
        engine.reset_replay();
        engine.run(policy.as_mut());
        prop_assert_eq!(
            &outcome_bytes(&engine.outcome().expect("completes")),
            &baseline
        );
    }

    /// Detour immunity: a fault-active run sandwiched between two
    /// fault-off warm-start sweeps must leave no residue — the
    /// fault-off run after the detour is byte-identical to the one
    /// before it (and to a fresh run).
    #[test]
    fn fault_detour_does_not_perturb_warm_start_walk(
        seed in 0u64..1_000_000,
        apps in 2usize..10,
        rus in 1usize..6,
        policy_id in 0u8..8,
        rate in 1u8..3,
    ) {
        let jobs = batch_jobs(seed, 2, apps);
        let off_cfg = cfg_with(rus, 0, FaultPlan::off());
        let fault_cfg = off_cfg.clone().with_faults(fault_plan(rate, 0, seed));
        let baseline = outcome_bytes(&run(&off_cfg, &jobs, policy_id, seed));

        // Seal a warm-start log on the half batch, like the sweep does.
        let mut engine = Engine::new(&off_cfg);
        let half = jobs.len().div_ceil(2);
        let mut policy = build_policy(policy_id, seed);
        policy.reset();
        engine.reset(&jobs[..half]);
        engine.run(policy.as_mut());
        let _ = engine.outcome();

        // Fault-off leg before the detour.
        let mut policy = build_policy(policy_id, seed);
        policy.reset();
        engine.reset(&jobs);
        engine.run(policy.as_mut());
        prop_assert_eq!(
            &outcome_bytes(&engine.outcome().expect("completes")),
            &baseline
        );

        // The fault-active detour (its own outcome is not the point).
        let mut policy = build_policy(policy_id, seed);
        policy.reset();
        engine.reset_with_config(&fault_cfg, &jobs);
        engine.run(policy.as_mut());
        let _ = engine.outcome().expect("finite repair completes");

        // Fault-off leg after the detour: byte-identical again.
        let mut policy = build_policy(policy_id, seed);
        policy.reset();
        engine.reset_with_config(&off_cfg, &jobs);
        engine.run(policy.as_mut());
        prop_assert_eq!(
            &outcome_bytes(&engine.outcome().expect("completes")),
            &baseline
        );
    }
}

/// Retry exhaustion: a transient-only plan hot enough to exhaust its
/// retry budget must show bounded retries, at least one give-up, and
/// one quarantine per give-up — while still completing every job and
/// validating clean.
#[test]
fn retry_exhaustion_gives_up_quarantines_and_recovers() {
    let jobs = batch_jobs(11, 2, 8);
    let found = (0u64..64).find_map(|fault_seed| {
        let plan = FaultPlan::off()
            .with_seed(fault_seed)
            .with_load_faults(600, 1)
            .with_ru_faults(0, Some(SimDuration::from_ms(10)));
        let cfg = cfg_with(2, 0, plan);
        let out = run(&cfg, &jobs, 1, 11);
        let c = out.trace.counts();
        (c.fault_giveups > 0).then_some((cfg, out))
    });
    let (cfg, out) = found.expect("64 fault seeds cover a retry exhaustion");
    let c = out.trace.counts();
    assert!(c.fault_retries > 0, "retries precede give-ups");
    assert_eq!(
        c.ru_quarantines, c.fault_giveups,
        "every give-up quarantines its RU (no hard faults configured)"
    );
    assert_eq!(
        out.stats.graph_completions.len(),
        jobs.len(),
        "the degraded pool still completes every job"
    );
    assert_validates_clean(&cfg, &jobs, &out, 1, 11);
}

/// Upset then repair: an upset-only plan must invalidate resident
/// configurations (repairing them by lazy re-load) without a single
/// quarantine, and still validate clean.
#[test]
fn upset_is_repaired_by_lazy_reload() {
    let jobs = batch_jobs(23, 2, 10);
    let found = (0u64..64).find_map(|fault_seed| {
        let plan = FaultPlan::off().with_seed(fault_seed).with_upsets(500);
        let cfg = cfg_with(3, 0, plan);
        let out = run(&cfg, &jobs, 1, 23);
        (out.trace.counts().fault_upsets > 0).then_some((cfg, out))
    });
    let (cfg, out) = found.expect("64 fault seeds cover an upset");
    let c = out.trace.counts();
    assert_eq!(c.ru_quarantines, 0, "upsets never quarantine");
    assert_eq!(c.fault_retries, 0, "upsets never retry");
    assert_eq!(
        out.stats.faults.repairs, c.fault_repairs,
        "stats mirror the trace's repair tally"
    );
    assert_eq!(out.stats.graph_completions.len(), jobs.len());
    assert_validates_clean(&cfg, &jobs, &out, 1, 23);
}

/// Quarantining the last RU with no repair configured must surface the
/// typed [`SimError::PoolExhausted`] — not a deadlock, not a stall.
#[test]
fn quarantine_of_last_ru_is_a_typed_error() {
    let jobs = batch_jobs(5, 1, 4);
    let plan = FaultPlan::off().with_seed(3).with_ru_faults(1000, None);
    let cfg = cfg_with(1, 0, plan);
    let mut policy = build_policy(1, 5);
    let err = simulate(&cfg, &jobs, policy.as_mut())
        .expect_err("a permanently dead one-RU pool cannot finish");
    match err {
        SimError::PoolExhausted { completed_jobs, at } => {
            assert!(completed_jobs < jobs.len());
            assert!(at > rtr_sim::SimTime::ZERO);
        }
        other => panic!("expected PoolExhausted, got {other:?}"),
    }
}
