//! Prefetch-subsystem invariants, validated through the shared
//! checker registry (`rtr_manager::validate`) — the same named
//! checkers the `vopr` fuzz harness drives.
//!
//! * The **guard**: no speculative load ever evicts a configuration
//!   with a strictly nearer next use — enforced by the `prefetch-guard`
//!   checker over random scenarios × policies × arrival processes, and
//!   shown to have teeth against a fabricated violating trace.
//! * **Demand priority**: a speculative load is cancelled the moment a
//!   demand load needs the port, and coalesced when it is writing
//!   exactly the configuration demand wants.
//! * **Prefetch off is invisible**: depth 0 records no speculative
//!   events and zeroed prefetch counters, bit-exact with the default
//!   configuration (the golden Fig. 2/3/7 + Table 1/2 tests pin the
//!   actual numbers).
//! * **Prefetch on pays**: on the paper's multimedia workload the
//!   planner hides load latency (lower visible overhead) while raising
//!   — never lowering — the reuse rate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reconfig_reuse::taskgraph::generate::{self, GenConfig};
use rtr_core::{
    compute_mobility, FifoPolicy, LfdPolicy, LfuPolicy, LruPolicy, MruPolicy, RandomPolicy,
};
use rtr_manager::{
    simulate, CheckContext, CheckerRegistry, FirstCandidatePolicy, JobSpec, Lookahead,
    ManagerConfig, PrefetchConfig, ReplacementPolicy, SimulationOutcome, TraceEvent,
};
use rtr_sim::SimDuration;
use rtr_taskgraph::{benchmarks, ConfigId, TaskGraph, TaskGraphBuilder};
use rtr_workload::{ArrivalProcess, SequenceModel};
use std::sync::Arc;

fn ms(x: u64) -> SimDuration {
    SimDuration::from_ms(x)
}

/// Runs the scenario and validates it through the full checker
/// registry, prefetch-depth context included (so `prefetch-off-
/// invisible` engages on depth-0 runs).
fn run(
    cfg: &ManagerConfig,
    jobs: &[JobSpec],
    policy: &mut dyn ReplacementPolicy,
) -> SimulationOutcome {
    let out = simulate(cfg, jobs, policy).expect("scenario completes");
    let cx = CheckContext::new(
        &out.trace,
        jobs,
        cfg.device.reconfig_latency,
        Some(&out.stats),
    )
    .with_prefetch_depth(cfg.prefetch.depth);
    let report = CheckerRegistry::standard().run(&cx);
    assert!(
        report.is_clean(),
        "checker registry found violations:\n{}",
        report.render()
    );
    out
}

/// Streamed multimedia workload: prefetch-on must reduce the visible
/// reconfiguration overhead without lowering the reuse rate, and every
/// hidden load must be attributed as a hit.
#[test]
fn streaming_prefetch_hides_loads_and_raises_reuse() {
    let templates: Vec<Arc<TaskGraph>> = benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let seq = SequenceModel::UniformRandom.generate(&templates, 120, 42);
    let arrivals = ArrivalProcess::Poisson {
        mean_gap_us: 100_000,
    }
    .generate(120, 7);
    let jobs: Vec<JobSpec> = seq
        .iter()
        .zip(&arrivals)
        .map(|(g, &a)| JobSpec::new(Arc::clone(g)).with_arrival(a))
        .collect();
    for (lookahead, mut policy) in [
        (Lookahead::Graphs(1), LfdPolicy::local(1)),
        (Lookahead::All, LfdPolicy::oracle()),
    ] {
        let base_cfg = ManagerConfig::paper_default().with_lookahead(lookahead);
        let off = run(&base_cfg, &jobs, &mut policy);
        let on_cfg = base_cfg
            .clone()
            .with_prefetch(PrefetchConfig::with_depth(4));
        let on = run(&on_cfg, &jobs, &mut policy);
        assert!(
            on.stats.total_overhead() < off.stats.total_overhead(),
            "{lookahead:?}: prefetch-on overhead {} !< prefetch-off {}",
            on.stats.total_overhead(),
            off.stats.total_overhead()
        );
        assert!(
            on.stats.reuse_rate_pct() >= off.stats.reuse_rate_pct(),
            "{lookahead:?}: the guard must never trade reuse away"
        );
        assert!(
            on.stats.prefetch.hits > 0,
            "prefetches must convert to hits"
        );
        // (issued = completed + cancelled is asserted on every `run`
        // by the registry's `prefetch-accounting` checker.)
        // Prefetch hits surface as reuse claims.
        assert!(on.stats.reuses >= off.stats.reuses);
    }
}

/// The paper's batch setting benefits too: while the tail of a graph
/// executes, the idle port preloads the next graph's configurations.
#[test]
fn batch_prefetch_reduces_overhead() {
    let templates: Vec<Arc<TaskGraph>> = benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let seq = SequenceModel::UniformRandom.generate(&templates, 120, 42);
    let jobs: Vec<JobSpec> = seq.iter().map(|g| JobSpec::new(Arc::clone(g))).collect();
    let cfg = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(1));
    let off = run(&cfg, &jobs, &mut LfdPolicy::local(1));
    let on = run(
        &cfg.clone().with_prefetch(PrefetchConfig::with_depth(4)),
        &jobs,
        &mut LfdPolicy::local(1),
    );
    assert!(
        on.stats.makespan < off.stats.makespan,
        "prefetch-on makespan {} !< prefetch-off {}",
        on.stats.makespan,
        off.stats.makespan
    );
    assert!(on.stats.reuse_rate_pct() >= off.stats.reuse_rate_pct());
}

/// Hand-built schedule driving the cancellation path. Graph A runs two
/// tasks on the *same* configuration: while the first executes (its
/// copy claimed, unreusable) and the second head is force-delayed, the
/// planner speculates on the backlog; a mid-write arrival unblocks the
/// head, whose demand load (same config, busy copy) aborts the write.
#[test]
fn demand_load_cancels_in_flight_prefetch() {
    let mut b = TaskGraphBuilder::new("A");
    let a0 = b.node("a0", ConfigId(30), ms(6));
    let a1 = b.node("a1", ConfigId(30), ms(2));
    b.edge(a0, a1);
    let a = Arc::new(b.build().unwrap());
    let mut b = TaskGraphBuilder::new("B");
    b.node("b0", ConfigId(31), ms(3));
    let bg = Arc::new(b.build().unwrap());
    let mut b = TaskGraphBuilder::new("D");
    b.node("d0", ConfigId(32), ms(3));
    let dg = Arc::new(b.build().unwrap());
    let jobs = vec![
        JobSpec::new(a).with_forced_delays(Arc::new(vec![0, 1])),
        JobSpec::new(bg),
        // Arrives mid-write of the speculative load (4..8): the
        // arrival event is what retries a1's delayed head.
        JobSpec::new(dg).with_arrival(rtr_sim::SimTime::from_ms(6)),
    ];
    let cfg = ManagerConfig::paper_default()
        .with_rus(2)
        .with_lookahead(Lookahead::Graphs(1))
        .with_prefetch(PrefetchConfig::with_depth(2));
    let out = run(&cfg, &jobs, &mut FirstCandidatePolicy);
    // t=0..4 load C30 (a0 execs 4..10); t=4 head a1 takes its forced
    // skip — C30 is resident but claimed-executing — and the planner
    // prefetches B's C31 into the free RU (4..8). t=6 D's arrival
    // retries a1: its claim of C30 fails (the copy is executing), so
    // the demand load of C30 cancels the C31 write mid-flight and
    // takes the freed RU (6..10).
    assert_eq!(out.stats.prefetch.cancelled, 1);
    assert!(out.trace.iter().any(|e| matches!(
        e,
        TraceEvent::PrefetchCancel {
            config: ConfigId(31),
            ..
        }
    )));
    // C31 is re-prefetched once A's tail executes, and D's C32 behind
    // it; both land as hits.
    assert_eq!(out.stats.prefetch.issued, 3);
    assert_eq!(out.stats.prefetch.completed, 2);
    assert_eq!(out.stats.prefetch.hits, 2);
    // The cancelled write holds the port for 2 ms (4..6) but never
    // charges traffic; only completed loads move bitstreams.
    assert_eq!(
        out.stats.traffic.prefetch_loads,
        out.stats.prefetch.completed
    );
}

/// Regression: the planner's window must *include* the blocked head.
/// With a force-delayed head whose configuration sits resident and
/// unclaimed on the only RU, a head-excluding window would see that
/// resident as "never requested" and evict it for the backlog's
/// configuration — precisely the Fig. 3 hazard. The guard must keep it.
#[test]
fn blocked_head_resident_is_never_a_prefetch_victim() {
    let mut b = TaskGraphBuilder::new("A");
    let a0 = b.node("a0", ConfigId(40), ms(6));
    let a1 = b.node("a1", ConfigId(40), ms(2));
    b.edge(a0, a1);
    let a = Arc::new(b.build().unwrap());
    let mut b = TaskGraphBuilder::new("B");
    b.node("b0", ConfigId(41), ms(3));
    let bg = Arc::new(b.build().unwrap());
    let mut b = TaskGraphBuilder::new("D");
    b.node("d0", ConfigId(42), ms(3));
    let dg = Arc::new(b.build().unwrap());
    let jobs = vec![
        // a1 is delayed two events: its second skip fires at a0's
        // execution end, exactly when C40 is resident-unclaimed and the
        // planner runs with the head still unissued.
        JobSpec::new(a).with_forced_delays(Arc::new(vec![0, 2])),
        JobSpec::new(bg),
        // A late arrival supplies the event that finally issues a1.
        JobSpec::new(dg).with_arrival(rtr_sim::SimTime::from_ms(20)),
    ];
    let cfg = ManagerConfig::paper_default()
        .with_rus(1)
        .with_lookahead(Lookahead::Graphs(1))
        .with_prefetch(PrefetchConfig::with_depth(2));
    // `run` validates the trace: a guard violation (speculative load of
    // C41 evicting C40, whose next request is the head's) would panic.
    let out = run(&cfg, &jobs, &mut FirstCandidatePolicy);
    assert_eq!(out.stats.prefetch.wasted, 0);
    assert!(
        out.stats.reuses >= 1,
        "a1 must reuse the protected resident C40"
    );
}

/// Hand-built schedule driving the coalesce path: the demand head wants
/// exactly the configuration the in-flight prefetch is writing — the
/// engine waits for the write instead of aborting it, and the placement
/// lands as a reuse claim (a prefetch hit).
#[test]
fn demand_coalesces_onto_matching_prefetch() {
    let mut b = TaskGraphBuilder::new("A");
    b.node("a0", ConfigId(20), ms(2));
    let a = Arc::new(b.build().unwrap());
    let mut b = TaskGraphBuilder::new("B");
    b.node("b0", ConfigId(21), ms(4));
    let bg = Arc::new(b.build().unwrap());
    let jobs = vec![JobSpec::new(a), JobSpec::new(bg)];
    let cfg = ManagerConfig::paper_default()
        .with_rus(2)
        .with_lookahead(Lookahead::Graphs(1))
        .with_prefetch(PrefetchConfig::with_depth(1));
    let out = run(&cfg, &jobs, &mut FirstCandidatePolicy);
    // t=0..4 load C20; exec 4..6; meanwhile the planner prefetches C21
    // (4..8). A ends at 6; B's head wants C21 — in flight — and waits
    // for the write instead of cancelling: the claim lands at t=8.
    assert_eq!(out.stats.prefetch.cancelled, 0);
    assert_eq!(out.stats.prefetch.hits, 1);
    assert_eq!(out.stats.reuses, 1, "the coalesced placement is a reuse");
    let reuse_at = out
        .trace
        .iter()
        .find_map(|e| match *e {
            TraceEvent::Reuse {
                config: ConfigId(21),
                at,
                ..
            } => Some(at),
            _ => None,
        })
        .expect("B's node reuses the prefetched configuration");
    assert_eq!(reuse_at, rtr_sim::SimTime::from_ms(8));
    // B executes 8..12: the prefetch hid 2 ms of the 4 ms load.
    assert_eq!(out.stats.makespan, ms(12));
}

/// Depth 0 must be indistinguishable from the pre-prefetch engine:
/// zero counters, no speculative trace events, and bit-identical
/// output with the default configuration.
#[test]
fn prefetch_off_is_invisible() {
    let templates: Vec<Arc<TaskGraph>> = benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let seq = SequenceModel::UniformRandom.generate(&templates, 40, 3);
    let jobs: Vec<JobSpec> = seq.iter().map(|g| JobSpec::new(Arc::clone(g))).collect();
    let default_cfg = ManagerConfig::paper_default();
    let explicit_off = default_cfg.clone().with_prefetch(PrefetchConfig::off());
    // `run` already applies `prefetch-off-invisible` to both runs (no
    // speculative events, zeroed counters); the bit-exactness claim is
    // the registry's `pooled-identity` checker with the explicit-off
    // run as the reference.
    let a = run(&default_cfg, &jobs, &mut LfdPolicy::local(1));
    let b = run(&explicit_off, &jobs, &mut LfdPolicy::local(1));
    let cx = CheckContext::new(
        &a.trace,
        &jobs,
        default_cfg.device.reconfig_latency,
        Some(&a.stats),
    )
    .with_reference(&b)
    .with_prefetch_depth(0);
    let report = CheckerRegistry::standard().run(&cx);
    assert!(
        report.is_clean(),
        "default config must be bit-identical with explicit prefetch-off:\n{}",
        report.render()
    );
}

/// The validator's guard rule has teeth: a fabricated trace whose
/// speculative load evicts a configuration with a strictly nearer next
/// use is flagged.
#[test]
fn validator_rejects_guard_violations() {
    use rtr_hw::RuId;
    use rtr_sim::SimTime;
    use rtr_taskgraph::NodeId;
    // Chain a(C1) → b(C1) → c(C3): after `a` executes, the remaining
    // requests are [C1 (for b), C3 (for c)] — evicting C1 to prefetch
    // C3 trades the nearer reuse away.
    let mut b = TaskGraphBuilder::new("g");
    let n0 = b.node("a", ConfigId(1), ms(5));
    let n1 = b.node("b", ConfigId(1), ms(5));
    let n2 = b.node("c", ConfigId(3), ms(5));
    b.edge(n0, n1).edge(n1, n2);
    let g = Arc::new(b.build().unwrap());
    let jobs = vec![JobSpec::new(g)];
    let t = SimTime::from_ms;
    let mut trace = rtr_manager::Trace::default();
    for ev in [
        TraceEvent::JobArrival { job: 0, at: t(0) },
        TraceEvent::GraphStart { job: 0, at: t(0) },
        TraceEvent::LoadStart {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru: RuId(0),
            at: t(0),
        },
        TraceEvent::LoadEnd {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru: RuId(0),
            at: t(4),
        },
        TraceEvent::ExecStart {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru: RuId(0),
            at: t(4),
        },
        TraceEvent::ExecEnd {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru: RuId(0),
            at: t(9),
        },
        // C1 is needed next (node b), yet the speculative load evicts it.
        TraceEvent::PrefetchStart {
            config: ConfigId(3),
            ru: RuId(0),
            at: t(9),
        },
        TraceEvent::PrefetchEnd {
            config: ConfigId(3),
            ru: RuId(0),
            at: t(13),
        },
    ] {
        trace.push(ev);
    }
    let cx = CheckContext::new(&trace, &jobs, ms(4), None);
    let report = CheckerRegistry::standard().run(&cx);
    let guard = report
        .outcome("prefetch-guard")
        .expect("prefetch-guard is registered");
    assert!(
        guard
            .violations
            .iter()
            .any(|v| v.0.contains("prefetch guard violated")),
        "expected the prefetch-guard checker to flag the eviction, got:\n{}",
        report.render()
    );
    assert!(
        report.failing().contains(&"prefetch-guard"),
        "the violation must be attributed to prefetch-guard by name"
    );
}

/// One randomly drawn scenario for the guard property test.
///
/// `annotate` selects head-blocking job annotations — the engine states
/// in which the head request is pending while the planner runs, where a
/// window bug can turn the head's own resident into a "legal" victim:
/// 0 = none, 1 = mobility + Skip Events, 2 = a forced one-event delay
/// on a random node of every job.
fn guard_scenario(
    seed: u64,
    apps: usize,
    rus: usize,
    arrivals_kind: u8,
    depth: usize,
    annotate: u8,
) -> (Vec<JobSpec>, ManagerConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen_cfg = GenConfig {
        exec_us: (1_000, 25_000),
        config_base: 50,
        config_pool: Some(8),
    };
    let family: Vec<Arc<TaskGraph>> =
        generate::template_family(&mut rng, 1 + (seed % 3) as usize, &gen_cfg)
            .into_iter()
            .map(Arc::new)
            .collect();
    let arrivals = match arrivals_kind % 4 {
        0 => ArrivalProcess::Batch,
        1 => ArrivalProcess::Poisson {
            mean_gap_us: 40_000,
        },
        2 => ArrivalProcess::Periodic { period_us: 35_000 },
        _ => ArrivalProcess::Bursty {
            size: 3,
            mean_gap_us: 150_000,
        },
    }
    .generate(apps, seed ^ 0x5EED);
    let lookahead = match seed % 3 {
        0 => Lookahead::None,
        1 => Lookahead::Graphs(1 + (seed % 4) as usize),
        _ => Lookahead::All,
    };
    let cfg = ManagerConfig::paper_default()
        .with_rus(rus)
        .with_lookahead(lookahead)
        .with_skip_events(annotate % 3 == 1)
        .with_prefetch(PrefetchConfig::with_depth(depth))
        .with_trace(true);
    let jobs: Vec<JobSpec> = (0..apps)
        .map(|i| {
            let graph = Arc::clone(&family[i % family.len()]);
            let mut job = JobSpec::new(Arc::clone(&graph)).with_arrival(arrivals[i]);
            match annotate % 3 {
                1 => {
                    let mobility =
                        Arc::new(compute_mobility(&graph, &cfg).expect("mobility computes"));
                    job = job.with_mobility(mobility);
                }
                2 => {
                    let mut delays = vec![0u32; graph.len()];
                    delays[(seed as usize + i) % graph.len()] = 1;
                    job = job.with_forced_delays(Arc::new(delays));
                }
                _ => {}
            }
            job
        })
        .collect();
    (jobs, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every policy × arrival process × lookahead × depth ×
    /// head-blocking annotation: the recorded schedule passes the full
    /// validator — single-port exclusivity across both lanes, the
    /// reuse-distance guard on every speculative eviction, and the
    /// prefetch/traffic/port counters.
    #[test]
    fn prefetched_schedules_always_validate(
        seed in any::<u64>(),
        apps in 1usize..16,
        rus in 1usize..7,
        arrivals in 0u8..4,
        policy in 0u8..7,
        depth in 1usize..5,
        annotate in 0u8..3,
    ) {
        let (jobs, cfg) = guard_scenario(seed, apps, rus, arrivals, depth, annotate);
        let mut policy: Box<dyn ReplacementPolicy> = match policy % 7 {
            0 => Box::new(FirstCandidatePolicy),
            1 => Box::new(LruPolicy::new()),
            2 => Box::new(FifoPolicy::new()),
            3 => Box::new(MruPolicy::new()),
            4 => Box::new(LfuPolicy::new()),
            5 => Box::new(RandomPolicy::new(seed)),
            _ => Box::new(LfdPolicy::local(2)),
        };
        // Random forced delays can be infeasible (the "following event"
        // never comes) — that is the documented StalledAwaitingEvent
        // error, not a guard property; only completed runs validate.
        match simulate(&cfg, &jobs, policy.as_mut()) {
            Ok(out) => {
                let cx = CheckContext::new(
                    &out.trace,
                    &jobs,
                    cfg.device.reconfig_latency,
                    Some(&out.stats),
                )
                .with_prefetch_depth(cfg.prefetch.depth);
                let report = CheckerRegistry::standard().run(&cx);
                prop_assert!(report.is_clean(), "violations:\n{}", report.render());
            }
            Err(e) => prop_assert!(annotate % 3 == 2, "unexpected stall: {e}"),
        }
    }
}
