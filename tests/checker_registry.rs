//! Anti-vacuity for the invariant-checker registry: a curated golden
//! scenario suite must make **every** registered checker actually
//! evaluate something (`fired > 0`). A checker that never fires is a
//! silent hole — the campaign-level twin of this gate is the `vopr`
//! smoke run's coverage gate.

use rtr_core::LfdPolicy;
use rtr_manager::{
    simulate, simulate_fleet, CheckContext, CheckerRegistry, FleetConfig, FleetOutcome, JobSpec,
    Lookahead, ManagerConfig, PlacementKind, PrefetchConfig, ReplacementPolicy, SimulationOutcome,
    TenantId,
};
use rtr_sim::SimDuration;
use rtr_taskgraph::{benchmarks, TaskGraph};
use rtr_workload::{ArrivalProcess, SequenceModel};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One golden scenario: a completed run plus the context the registry
/// needs (reference outcome for `pooled-identity`, prefetch depth for
/// `prefetch-off-invisible`).
struct Golden {
    name: &'static str,
    outcome: SimulationOutcome,
    reference: SimulationOutcome,
    jobs: Vec<JobSpec>,
    latency: SimDuration,
    depth: usize,
}

fn multimedia_jobs(count: usize, seed: u64, arrivals: &ArrivalProcess) -> Vec<JobSpec> {
    let templates: Vec<Arc<TaskGraph>> = benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let seq = SequenceModel::UniformRandom.generate(&templates, count, seed);
    let instants = arrivals.generate(count, seed ^ 0xA11);
    seq.iter()
        .zip(&instants)
        .map(|(g, &a)| JobSpec::new(Arc::clone(g)).with_arrival(a))
        .collect()
}

fn golden(
    name: &'static str,
    cfg: &ManagerConfig,
    jobs: Vec<JobSpec>,
    mut policy: Box<dyn ReplacementPolicy>,
) -> Golden {
    let outcome = simulate(cfg, &jobs, policy.as_mut()).expect("golden scenario completes");
    let reference = simulate(cfg, &jobs, policy.as_mut()).expect("golden scenario completes");
    Golden {
        name,
        outcome,
        reference,
        jobs,
        latency: cfg.device.reconfig_latency,
        depth: cfg.prefetch.depth,
    }
}

/// The curated suite, chosen so the union covers every checker:
/// a batch depth-0 run (`prefetch-off-invisible`), a streaming
/// prefetch-on run (`prefetch-guard` probes at every speculative
/// load), and a Skip-Events run (skip/stall paths of
/// `reuse-residency`). Every scenario carries a reference, so
/// `pooled-identity` fires throughout.
fn golden_suite() -> Vec<Golden> {
    let base = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(1));
    let mut suite = vec![golden(
        "batch-depth0",
        &base,
        multimedia_jobs(40, 11, &ArrivalProcess::Batch),
        Box::new(LfdPolicy::local(1)),
    )];
    let prefetch_cfg = base.clone().with_prefetch(PrefetchConfig::with_depth(4));
    suite.push(golden(
        "streaming-prefetch4",
        &prefetch_cfg,
        multimedia_jobs(
            60,
            42,
            &ArrivalProcess::Poisson {
                mean_gap_us: 100_000,
            },
        ),
        Box::new(LfdPolicy::local(1)),
    ));
    let skip_cfg = base
        .clone()
        .with_lookahead(Lookahead::Graphs(2))
        .with_skip_events(true);
    let skip_jobs: Vec<JobSpec> = multimedia_jobs(30, 7, &ArrivalProcess::Batch)
        .into_iter()
        .map(|job| {
            let mobility = Arc::new(
                rtr_core::compute_mobility(&job.graph, &skip_cfg).expect("mobility computes"),
            );
            job.with_mobility(mobility)
        })
        .collect();
    suite.push(golden(
        "skip-events",
        &skip_cfg,
        skip_jobs,
        Box::new(LfdPolicy::local_with_skip(2)),
    ));
    suite
}

/// The fleet golden: a 2-device ReuseAffinity pool under a tenant
/// quota tight enough to reject some submissions, so the admission
/// replay of `tenant-isolation` exercises both branches. Each device
/// carries a partitioned reference run (jobs routed to it, replayed
/// through a dedicated engine) so the single-device checkers fire on
/// the pooled traces too.
struct FleetGolden {
    cfg: FleetConfig,
    outcome: FleetOutcome,
    routed: Vec<Vec<JobSpec>>,
    references: Vec<SimulationOutcome>,
    device_rus: Vec<usize>,
}

fn fleet_golden() -> FleetGolden {
    let base = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(1));
    let devices: Vec<ManagerConfig> = [2usize, 4]
        .iter()
        .map(|&rus| base.clone().with_rus(rus))
        .collect();
    let device_rus: Vec<usize> = devices.iter().map(|c| c.rus).collect();
    let cfg = FleetConfig::new(devices, PlacementKind::ReuseAffinity).with_quota(10);
    let jobs: Vec<JobSpec> = multimedia_jobs(48, 23, &ArrivalProcess::Batch)
        .into_iter()
        .enumerate()
        .map(|(i, job)| job.with_tenant(TenantId((i % 3) as u32)))
        .collect();
    let build = || Box::new(LfdPolicy::local(1)) as Box<dyn ReplacementPolicy>;
    let outcome = simulate_fleet(&cfg, &jobs, build).expect("fleet golden completes");
    let mut routed: Vec<Vec<JobSpec>> = vec![Vec::new(); cfg.devices.len()];
    for d in &outcome.decisions {
        routed[d.device].push(jobs[d.submit_index].clone());
    }
    let references: Vec<SimulationOutcome> = cfg
        .devices
        .iter()
        .zip(&routed)
        .map(|(dev_cfg, dev_jobs)| {
            let mut policy = build();
            simulate(dev_cfg, dev_jobs, policy.as_mut()).expect("fleet reference completes")
        })
        .collect();
    FleetGolden {
        cfg,
        outcome,
        routed,
        references,
        device_rus,
    }
}

#[test]
fn every_registered_checker_fires_on_the_golden_suite() {
    let registry = CheckerRegistry::standard();
    let mut fired: BTreeMap<&'static str, u64> =
        registry.names().into_iter().map(|n| (n, 0)).collect();
    for g in golden_suite() {
        let cx = CheckContext::new(&g.outcome.trace, &g.jobs, g.latency, Some(&g.outcome.stats))
            .with_reference(&g.reference)
            .with_prefetch_depth(g.depth);
        let report = registry.run(&cx);
        assert!(
            report.is_clean(),
            "golden scenario '{}' must validate:\n{}",
            g.name,
            report.render()
        );
        for o in &report.outcomes {
            *fired.get_mut(o.name).expect("registered name") += o.fired;
        }
    }
    let fg = fleet_golden();
    let info = fg.outcome.check_info(&fg.cfg, &fg.device_rus);
    for (d, dev) in fg.outcome.devices.iter().enumerate() {
        let cx = CheckContext::new(
            &dev.trace,
            &fg.routed[d],
            fg.cfg.devices[d].device.reconfig_latency,
            Some(&dev.stats),
        )
        .with_reference(&fg.references[d]);
        let cx = if d == 0 { cx.with_fleet(&info) } else { cx };
        let report = registry.run(&cx);
        assert!(
            report.is_clean(),
            "fleet golden device {d} must validate:\n{}",
            report.render()
        );
        for o in &report.outcomes {
            *fired.get_mut(o.name).expect("registered name") += o.fired;
        }
    }
    let silent: Vec<&&str> = fired
        .iter()
        .filter_map(|(name, &n)| (n == 0).then_some(name))
        .collect();
    assert!(
        silent.is_empty(),
        "checkers never fired on the golden suite (vacuous): {silent:?}\ntotals: {fired:?}"
    );
}

#[test]
fn registry_reports_are_deterministic_and_ordered() {
    let registry = CheckerRegistry::standard();
    let suite = golden_suite();
    let g = &suite[1];
    let cx = CheckContext::new(&g.outcome.trace, &g.jobs, g.latency, Some(&g.outcome.stats))
        .with_reference(&g.reference)
        .with_prefetch_depth(g.depth);
    let a = registry.run(&cx);
    let b = registry.run(&cx);
    assert_eq!(a.render(), b.render(), "reports must be byte-stable");
    let names: Vec<&'static str> = a.outcomes.iter().map(|o| o.name).collect();
    assert_eq!(
        names,
        registry.names(),
        "report order must follow registration order"
    );
}

#[test]
fn disabling_a_checker_silences_only_that_checker() {
    let mut registry = CheckerRegistry::standard();
    registry
        .set_enabled("prefetch-guard", false)
        .expect("registered name");
    let suite = golden_suite();
    let g = &suite[1]; // the prefetch-on scenario
    let cx = CheckContext::new(&g.outcome.trace, &g.jobs, g.latency, Some(&g.outcome.stats))
        .with_reference(&g.reference)
        .with_prefetch_depth(g.depth);
    let report = registry.run(&cx);
    assert!(report.outcome("prefetch-guard").is_none());
    assert_eq!(
        report.outcomes.len(),
        CheckerRegistry::standard().names().len() - 1
    );
    assert!(report.is_clean());
}
