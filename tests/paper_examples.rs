//! Golden tests: exact reproduction of the paper's worked examples.
//!
//! * Fig. 2 — two task graphs on 4 RUs under LRU / LFD / Local LFD:
//!   reuse counts and reconfiguration overheads.
//! * Fig. 3 — the Skip Events motivational example: ASAP vs skip-enabled
//!   Local LFD (1).
//! * Fig. 7 — the mobility-calculation probe schedules.
//!
//! Every run's trace is additionally checked against the full invariant
//! validator.

use reconfig_reuse::prelude::*;
use rtr_manager::validate::assert_valid;
use rtr_manager::ReplacementPolicy;
use std::sync::Arc;

fn ms(x: u64) -> SimDuration {
    SimDuration::from_ms(x)
}

/// Fig. 2 workload: TG1, TG2, TG2, TG1, TG2 (12 task executions).
fn fig2_jobs() -> Vec<JobSpec> {
    let tg1 = Arc::new(taskgraph::benchmarks::fig2_tg1());
    let tg2 = Arc::new(taskgraph::benchmarks::fig2_tg2());
    [&tg1, &tg2, &tg2, &tg1, &tg2]
        .iter()
        .map(|g| JobSpec::new(Arc::clone(g)))
        .collect()
}

fn run_fig2(policy: &mut dyn ReplacementPolicy, lookahead: Lookahead) -> RunStats {
    let cfg = ManagerConfig::paper_default().with_lookahead(lookahead);
    let jobs = fig2_jobs();
    let out = manager::simulate(&cfg, &jobs, policy).expect("fig2 simulates");
    assert_valid(
        &out.trace,
        &jobs,
        cfg.device.reconfig_latency,
        Some(&out.stats),
    );
    out.stats
}

#[test]
fn fig2_ideal_baseline_is_42ms() {
    let jobs = fig2_jobs();
    assert_eq!(
        rtr_manager::ideal::ideal_sequence_makespan(&jobs, 4),
        ms(42)
    );
}

#[test]
fn fig2a_lru_reuse_and_overhead() {
    // Paper: "Reuse: 16.7% / Overhead: 22 ms".
    let stats = run_fig2(&mut LruPolicy::new(), Lookahead::None);
    assert_eq!(stats.executed, 12);
    assert_eq!(stats.reuses, 2, "LRU reuses 2 of 12 tasks");
    assert!((stats.reuse_rate_pct() - 16.7).abs() < 0.1);
    assert_eq!(stats.total_overhead(), ms(22));
}

#[test]
fn fig2b_lfd_reuse_and_overhead() {
    // Paper: "Reuse: 41.7% / Overhead: 11 ms" — the optimal reuse rate.
    let stats = run_fig2(&mut LfdPolicy::oracle(), Lookahead::All);
    assert_eq!(stats.executed, 12);
    assert_eq!(stats.reuses, 5, "LFD reuses 5 of 12 tasks");
    assert!((stats.reuse_rate_pct() - 41.7).abs() < 0.1);
    assert_eq!(stats.total_overhead(), ms(11));
}

#[test]
fn fig2c_local_lfd_reuse_and_overhead() {
    // Paper: "Reuse: 41.7% / Overhead: 15 ms" — same optimal reuse, 4 ms
    // more overhead because the first load of Task 5 evicts RU1.
    let stats = run_fig2(&mut LfdPolicy::local(1), Lookahead::Graphs(1));
    assert_eq!(stats.reuses, 5, "Local LFD (1) reuses 5 of 12 tasks");
    assert!((stats.reuse_rate_pct() - 41.7).abs() < 0.1);
    assert_eq!(stats.total_overhead(), ms(15));
}

#[test]
fn fig2_local_lfd_with_two_graphs_matches_lfd() {
    // Paper: "this limitation disappears if there are two task graphs
    // enqueued in DL ... Local LFD achieves the same results as LFD."
    let stats = run_fig2(&mut LfdPolicy::local(2), Lookahead::Graphs(2));
    assert_eq!(stats.reuses, 5);
    assert_eq!(stats.total_overhead(), ms(11));
}

#[test]
fn fig2_first_victim_of_local_lfd_is_ru1() {
    // The paper narrates that loading the first instance of Task 5,
    // Local LFD "selects the first candidate it finds, which is RU1"
    // (LFD selects RU3 instead). Check the trace.
    let cfg = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(1));
    let jobs = fig2_jobs();
    let out = manager::simulate(&cfg, &jobs, &mut LfdPolicy::local(1)).unwrap();
    let first_t5_load = out
        .trace
        .iter()
        .find_map(|e| match *e {
            manager::TraceEvent::LoadStart {
                config: ConfigId(5),
                ru,
                ..
            } => Some(ru),
            _ => None,
        })
        .expect("task 5 is loaded");
    assert_eq!(first_t5_load, RuId(0), "Local LFD evicts RU1");

    let out = manager::simulate(&cfg, &jobs, &mut LfdPolicy::oracle()).unwrap();
    // Oracle needs full lookahead:
    let cfg_all = cfg.with_lookahead(Lookahead::All);
    let out = {
        let _ = out;
        manager::simulate(&cfg_all, &jobs, &mut LfdPolicy::oracle()).unwrap()
    };
    let first_t5_load = out
        .trace
        .iter()
        .find_map(|e| match *e {
            manager::TraceEvent::LoadStart {
                config: ConfigId(5),
                ru,
                ..
            } => Some(ru),
            _ => None,
        })
        .unwrap();
    assert_eq!(first_t5_load, RuId(2), "LFD evicts RU3");
}

/// Fig. 3 workload: TG1, TG2, TG1 (10 task executions), with mobility
/// annotations for the skip runs.
fn fig3_jobs(cfg: &ManagerConfig) -> Vec<JobSpec> {
    let tg1 = Arc::new(taskgraph::benchmarks::fig3_tg1());
    let tg2 = Arc::new(taskgraph::benchmarks::fig3_tg2());
    let mut cache = TemplateCache::new();
    [&tg1, &tg2, &tg1]
        .iter()
        .map(|g| cache.get_or_prepare(g, cfg).unwrap().instantiate())
        .collect()
}

#[test]
fn fig3_ideal_baseline_is_62ms() {
    let cfg = ManagerConfig::paper_default();
    assert_eq!(
        rtr_manager::ideal::ideal_sequence_makespan(&fig3_jobs(&cfg), 4),
        ms(62)
    );
}

#[test]
fn fig3a_asap_local_lfd() {
    // Paper Fig. 3a: "Reuse: 0% / Overhead: 12 ms", makespan 74 ms.
    let cfg = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(1));
    let jobs = fig3_jobs(&cfg);
    let out = manager::simulate(&cfg, &jobs, &mut LfdPolicy::local(1)).unwrap();
    assert_valid(
        &out.trace,
        &jobs,
        cfg.device.reconfig_latency,
        Some(&out.stats),
    );
    assert_eq!(out.stats.executed, 10);
    assert_eq!(out.stats.reuses, 0);
    assert_eq!(out.stats.makespan, ms(74));
    assert_eq!(out.stats.total_overhead(), ms(12));
}

#[test]
fn fig3b_skip_events_local_lfd() {
    // Paper Fig. 3b: "Reuse: 10% / Overhead: 8 ms", makespan 70 ms —
    // Task 7's load is delayed one event, Task 4 is evicted instead of
    // Task 1, and Task 1 is reused by the second instance of TG1.
    let cfg = ManagerConfig::paper_default()
        .with_lookahead(Lookahead::Graphs(1))
        .with_skip_events(true);
    let jobs = fig3_jobs(&cfg);
    let out = manager::simulate(&cfg, &jobs, &mut LfdPolicy::local_with_skip(1)).unwrap();
    assert_valid(
        &out.trace,
        &jobs,
        cfg.device.reconfig_latency,
        Some(&out.stats),
    );
    assert_eq!(out.stats.executed, 10);
    assert_eq!(out.stats.reuses, 1, "Task 1 is reused");
    assert!((out.stats.reuse_rate_pct() - 10.0).abs() < 1e-9);
    assert_eq!(out.stats.makespan, ms(70));
    assert_eq!(out.stats.total_overhead(), ms(8));
    assert_eq!(out.stats.skips, 1, "exactly one reconfiguration delayed");

    // The reused task is T1 (config 1) of job 2.
    let reuse = out
        .trace
        .iter()
        .find_map(|e| match *e {
            manager::TraceEvent::Reuse { job, config, .. } => Some((job, config)),
            _ => None,
        })
        .expect("one reuse event");
    assert_eq!(reuse, (2, ConfigId(1)));
}

#[test]
fn fig7_probe_schedules_match_paper() {
    // Fig. 7: reference 30 ms; delaying T5 once → 36 ms; T6 once →
    // 32 ms; T7 once → 30 ms; T7 twice → 32 ms.
    let g = Arc::new(taskgraph::benchmarks::fig3_tg2());
    let cfg = ManagerConfig::paper_default();
    let probe = |delays: Vec<u32>| -> SimDuration {
        let job = JobSpec::new(Arc::clone(&g)).with_forced_delays(Arc::new(delays));
        manager::simulate(&cfg, &[job], &mut rtr_manager::FirstCandidatePolicy)
            .unwrap()
            .stats
            .makespan
    };
    assert_eq!(probe(vec![0, 0, 0, 0]), ms(30), "reference schedule");
    assert_eq!(probe(vec![0, 1, 0, 0]), ms(36), "delaying task 5");
    assert_eq!(probe(vec![0, 0, 1, 0]), ms(32), "delaying task 6");
    assert_eq!(probe(vec![0, 0, 0, 1]), ms(30), "delaying task 7 once");
    assert_eq!(probe(vec![0, 0, 0, 2]), ms(32), "delaying task 7 twice");
}

#[test]
fn fig3_graph_timeline_matches_figure() {
    // Cross-check key instants of the Fig. 3a schedule: TG1a completes
    // at 22, TG2 at 52, TG1b at 74.
    let cfg = ManagerConfig::paper_default().with_lookahead(Lookahead::Graphs(1));
    let jobs = fig3_jobs(&cfg);
    let out = manager::simulate(&cfg, &jobs, &mut LfdPolicy::local(1)).unwrap();
    assert_eq!(
        out.stats.graph_completions,
        vec![
            SimTime::from_ms(22),
            SimTime::from_ms(52),
            SimTime::from_ms(74)
        ]
    );
}
