//! The Dynamic List in action (the paper's Fig. 1): how much the
//! scheduler knows about the future changes what Local LFD can do.
//!
//! The same 100-application sequence is executed with Dynamic Lists of
//! 0–8 task graphs plus the clairvoyant oracle; the example prints the
//! reuse and overhead trajectory, showing diminishing returns — the
//! paper's observation that "Local LFD (4) is very close to the optimal
//! one".
//!
//! ```text
//! cargo run --release --example dynamic_list
//! ```

use reconfig_reuse::prelude::*;
use reconfig_reuse::workload::SequenceModel;
use std::sync::Arc;

fn main() {
    let templates: Vec<Arc<TaskGraph>> = taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let seq = SequenceModel::UniformRandom.generate(&templates, 100, 1234);
    let jobs: Vec<JobSpec> = seq.iter().map(|g| JobSpec::new(Arc::clone(g))).collect();

    // Fig. 1 illustration: the first few entries of the FIFO queue.
    println!("Dynamic List head (Fig. 1): the scheduler only sees a window of this queue");
    print!("  DL = [");
    for g in seq.iter().take(6) {
        print!(" {}", g.name());
    }
    println!(" ... ]\n");

    println!(
        "{:<18} {:>8} {:>12} {:>10}",
        "visibility", "reuse%", "overhead", "loads"
    );
    for window in [0usize, 1, 2, 4, 8] {
        let (lookahead, mut policy) = if window == 0 {
            (Lookahead::None, LfdPolicy::local(0))
        } else {
            (Lookahead::Graphs(window), LfdPolicy::local(window))
        };
        let cfg = ManagerConfig::paper_default()
            .with_rus(8)
            .with_lookahead(lookahead);
        let out = manager::simulate(&cfg, &jobs, &mut policy).unwrap();
        println!(
            "{:<18} {:>8.1} {:>12} {:>10}",
            format!("DL = {window} graphs"),
            out.stats.reuse_rate_pct(),
            out.stats.total_overhead().to_string(),
            out.stats.loads
        );
    }
    let cfg = ManagerConfig::paper_default()
        .with_rus(8)
        .with_lookahead(Lookahead::All);
    let out = manager::simulate(&cfg, &jobs, &mut LfdPolicy::oracle()).unwrap();
    println!(
        "{:<18} {:>8.1} {:>12} {:>10}",
        "oracle (LFD)",
        out.stats.reuse_rate_pct(),
        out.stats.total_overhead().to_string(),
        out.stats.loads
    );
    println!("\nEven one graph of lookahead recovers most of the oracle's reuse;");
    println!("the remaining gap closes by DL = 4 — the paper's Fig. 9a story.");
}
