//! Implementing a custom replacement policy against the
//! [`ReplacementPolicy`] trait.
//!
//! The example builds "LFD-with-a-hint": it behaves like Local LFD but
//! breaks ties among never-requested candidates by preferring the
//! *least recently used* one instead of the lowest RU index — a hybrid
//! of the paper's policy and its baseline. On workloads where ties are
//! common (small Dynamic Lists) the hint recovers some of LRU's
//! temporal-locality signal.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use reconfig_reuse::manager::DecisionContext;
use reconfig_reuse::prelude::*;
use reconfig_reuse::workload::SequenceModel;
use std::collections::HashMap;
use std::sync::Arc;

/// Local LFD with an LRU tie-break among unreferenced candidates.
#[derive(Default)]
struct LfdLruHybrid {
    last_touch: HashMap<ConfigId, u64>,
    clock: u64,
}

impl LfdLruHybrid {
    fn touch(&mut self, config: ConfigId) {
        self.clock += 1;
        self.last_touch.insert(config, self.clock);
    }
}

impl ReplacementPolicy for LfdLruHybrid {
    fn name(&self) -> &str {
        "LFD+LRU-tiebreak"
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        // Forward distance per candidate (None = never requested).
        let dist: Vec<Option<usize>> = ctx
            .candidates
            .iter()
            .map(|c| ctx.distance_of(c.config))
            .collect();
        // If any candidate is never requested, pick the least recently
        // used among those; otherwise pick the farthest.
        let unreferenced: Vec<usize> = (0..dist.len()).filter(|&i| dist[i].is_none()).collect();
        let pick = if unreferenced.is_empty() {
            (0..dist.len())
                .max_by_key(|&i| dist[i].expect("all referenced"))
                .expect("candidates non-empty")
        } else {
            unreferenced
                .into_iter()
                .min_by_key(|&i| {
                    self.last_touch
                        .get(&ctx.candidates[i].config)
                        .copied()
                        .unwrap_or(0)
                })
                .expect("non-empty")
        };
        ctx.candidates[pick].ru
    }

    fn on_load_complete(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.touch(config);
    }
    fn on_reuse(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.touch(config);
    }
    fn on_exec_end(&mut self, config: ConfigId, _now: SimTime) {
        self.touch(config);
    }
    fn reset(&mut self) {
        self.last_touch.clear();
        self.clock = 0;
    }
}

fn main() {
    let templates: Vec<Arc<TaskGraph>> = taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let seq = SequenceModel::UniformRandom.generate(&templates, 300, 5);
    let jobs: Vec<JobSpec> = seq.iter().map(|g| JobSpec::new(Arc::clone(g))).collect();
    let cfg = ManagerConfig::paper_default()
        .with_rus(6)
        .with_lookahead(Lookahead::Graphs(1));

    let mut plain = LfdPolicy::local(1);
    let mut hybrid = LfdLruHybrid::default();
    let mut lru = LruPolicy::new();

    let a = manager::simulate(&cfg, &jobs, &mut plain).unwrap();
    let b = manager::simulate(&cfg, &jobs, &mut hybrid).unwrap();
    let c = manager::simulate(
        &cfg.clone().with_lookahead(Lookahead::None),
        &jobs,
        &mut lru,
    )
    .unwrap();

    println!("300 uniform-random applications, 6 RUs, DL = 1:\n");
    for out in [&c, &a, &b] {
        println!(
            "{:<20} reuse {:>5.1}%   overhead {}",
            out.stats.policy,
            out.stats.reuse_rate_pct(),
            out.stats.total_overhead()
        );
    }
    println!("\nThe tie-break only matters when the Dynamic List is too small to");
    println!("rank the candidates — exactly the regime the paper's Fig. 2c shows.");
}
