//! A multimedia processing station — the workload class the paper's
//! introduction motivates (image processing, multimedia, artificial
//! vision on a reconfigurable SoC).
//!
//! A camera pipeline alternates between decoding stills (JPEG),
//! encoding clips (MPEG-1) and running pattern recognition (Hough); the
//! mix arrives in bursts. The example sweeps every replacement policy
//! over the same 200-application day and reports reuse, makespan,
//! energy and configuration-bus traffic.
//!
//! ```text
//! cargo run --release --example multimedia_station
//! ```

use reconfig_reuse::prelude::*;
use reconfig_reuse::workload::{
    runner::{run_cell, CellConfig},
    PolicyKind, SequenceModel,
};
use std::sync::Arc;

fn main() {
    let templates: Vec<Arc<TaskGraph>> = taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    // Bursty arrivals: a camera tends to produce runs of the same job.
    let day = SequenceModel::Bursty { repeat_prob: 0.6 }.generate(&templates, 200, 2024);

    println!("Multimedia station: 200 bursty applications, 4 RUs, 4 ms reconfigurations\n");
    println!(
        "{:<28} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "policy", "reuse%", "loads", "makespan", "energy (mJ)", "bus (MiB)"
    );

    let policies = [
        PolicyKind::Random { seed: 7 },
        PolicyKind::Fifo,
        PolicyKind::Mru,
        PolicyKind::Lfu,
        PolicyKind::Lru,
        PolicyKind::LocalLfd {
            window: 1,
            skip: false,
        },
        PolicyKind::LocalLfd {
            window: 1,
            skip: true,
        },
        PolicyKind::LocalLfd {
            window: 4,
            skip: true,
        },
        PolicyKind::Lfd,
    ];
    for kind in policies {
        let out = run_cell(&day, &CellConfig::new(kind, 4)).expect("simulation completes");
        println!(
            "{:<28} {:>8.1} {:>10} {:>12} {:>12.1} {:>10.1}",
            kind.label(),
            out.stats.reuse_rate_pct(),
            out.stats.loads,
            out.stats.makespan.to_string(),
            out.stats.traffic.energy_uj as f64 / 1_000.0,
            out.stats.traffic.bytes_moved as f64 / (1024.0 * 1024.0),
        );
    }

    println!(
        "\nEvery avoided load skips one {} KiB bitstream transfer and its energy —",
        DeviceSpec::paper_default().bitstream_bytes / 1024
    );
    println!("the reuse column is the whole story: higher reuse = fewer loads = less energy.");
}
