//! Explore the design-time mobility of task graphs: which
//! reconfigurations can be delayed for free, and how mobility relates
//! to classic scheduling slack.
//!
//! ```text
//! cargo run --release --example mobility_explorer
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reconfig_reuse::prelude::*;
use reconfig_reuse::taskgraph::{analysis::analyze, generate, reconfiguration_sequence};
use std::sync::Arc;

fn report(graph: &Arc<TaskGraph>, cfg: &ManagerConfig) {
    let mobility = compute_mobility(graph, cfg).expect("mobility computes");
    let a = analyze(graph);
    let seq = reconfiguration_sequence(graph);
    println!(
        "\n{} — {} tasks, critical path {}",
        graph.name(),
        graph.len(),
        a.critical_path
    );
    println!(
        "{:<4} {:<12} {:>9} {:>10} {:>9}",
        "load", "task", "exec", "slack", "mobility"
    );
    for node in seq {
        let t = graph.node(node);
        println!(
            "{:<4} {:<12} {:>9} {:>10} {:>9}",
            node.0,
            t.name,
            t.exec_time.to_string(),
            a.slack(node).to_string(),
            mobility[node.idx()]
        );
    }
}

fn main() {
    let cfg = ManagerConfig::paper_default();
    println!("Mobility = how many scheduler events a task's reconfiguration can be");
    println!("delayed without extending the schedule (the paper's Fig. 6 algorithm).");
    println!("Slack is time-based; mobility is event-based — they correlate but differ.");

    for g in taskgraph::benchmarks::multimedia_suite() {
        report(&Arc::new(g), &cfg);
    }
    report(&Arc::new(taskgraph::benchmarks::fig3_tg2()), &cfg);

    // A randomly generated graph for contrast.
    let mut rng = StdRng::seed_from_u64(12);
    let random = Arc::new(generate::layered(
        &mut rng,
        "random-layered",
        3,
        3,
        0.5,
        &generate::GenConfig::default(),
    ));
    report(&random, &cfg);
}
