//! Quickstart: simulate a small application sequence on a 4-RU
//! reconfigurable system and compare LRU with the paper's Local LFD.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use reconfig_reuse::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Task graphs: use the paper's JPEG decoder and MPEG-1 encoder.
    let jpeg = Arc::new(taskgraph::benchmarks::jpeg());
    let mpeg = Arc::new(taskgraph::benchmarks::mpeg1());

    // 2. A FIFO application sequence (two instances of each, interleaved).
    let jobs: Vec<JobSpec> = [&jpeg, &mpeg, &jpeg, &mpeg]
        .iter()
        .map(|g| JobSpec::new(Arc::clone(g)))
        .collect();

    // 3. The system: 6 RUs, 4 ms reconfigurations, Dynamic List of one
    //    future task graph. (With only 4 RUs the nine distinct
    //    configurations thrash and no policy can save much — the
    //    regime the paper's Fig. 9 sweeps explore.)
    let cfg = ManagerConfig::paper_default()
        .with_rus(6)
        .with_lookahead(Lookahead::Graphs(1));

    // 4. Run two replacement policies over the same workload.
    let mut lru = LruPolicy::new();
    let lru_out = manager::simulate(
        &cfg.clone().with_lookahead(Lookahead::None),
        &jobs,
        &mut lru,
    )
    .expect("simulation completes");

    let mut local_lfd = LfdPolicy::local(1);
    let lfd_out = manager::simulate(&cfg, &jobs, &mut local_lfd).expect("simulation completes");

    for out in [&lru_out, &lfd_out] {
        println!(
            "{:<14} reuse {:>5.1}%   loads {:<3} makespan {}   overhead {}",
            out.stats.policy,
            out.stats.reuse_rate_pct(),
            out.stats.loads,
            out.stats.makespan,
            out.stats.total_overhead(),
        );
    }

    // 5. Reuse saves energy and bus traffic (one bitstream per avoided load).
    let saved = lfd_out.stats.traffic.reuses * cfg.device.bitstream_bytes;
    println!(
        "Local LFD avoided {} reconfigurations = {} KiB of configuration traffic",
        lfd_out.stats.traffic.reuses,
        saved / 1024
    );
}
