//! # reconfig-reuse
//!
//! A full Rust reproduction of *"A Replacement Technique to Maximize
//! Task Reuse in Reconfigurable Systems"* (Clemente et al., IPDPS
//! Workshops / RAW 2011): the **Local LFD** configuration-replacement
//! policy with the **Skip Events** mobility feature, running on a
//! discrete-event simulator of a multi-RU dynamically reconfigurable
//! system driven by the event-triggered task-graph execution manager of
//! the paper's ref.&nbsp;9.
//!
//! This facade crate re-exports the workspace layers under stable
//! module names:
//!
//! * [`taskgraph`] — DAG substrate, benchmark graphs, generators.
//! * [`sim`] — discrete-event kernel (time, queues, Gantt rendering).
//! * [`hw`] — RU pool, reconfiguration controller, energy model.
//! * [`manager`] — the execution manager, policy trait, traces,
//!   validation, ideal baselines.
//! * [`core`] — the paper's contribution: LFD / Local LFD, the LRU &
//!   friends baselines, mobility calculation, hybrid pipeline.
//! * [`workload`] — experiment harness: sequence generators, sweeps,
//!   metric tables.
//!
//! ## Quickstart
//!
//! ```
//! use reconfig_reuse::prelude::*;
//! use std::sync::Arc;
//!
//! // Two multimedia applications from the paper, executed in an
//! // alternating FIFO sequence on 6 RUs with 4 ms reconfigurations.
//! let jpeg = Arc::new(taskgraph::benchmarks::jpeg());
//! let mpeg = Arc::new(taskgraph::benchmarks::mpeg1());
//! let jobs: Vec<JobSpec> = [&jpeg, &mpeg, &jpeg, &mpeg]
//!     .iter()
//!     .map(|g| JobSpec::new(Arc::clone(g)))
//!     .collect();
//!
//! let cfg = ManagerConfig::paper_default()
//!     .with_rus(6)
//!     .with_lookahead(Lookahead::Graphs(1));
//! let mut policy = LfdPolicy::local(1);
//! let out = manager::simulate(&cfg, &jobs, &mut policy).unwrap();
//! println!(
//!     "reuse {:.1}%  overhead {}",
//!     out.stats.reuse_rate_pct(),
//!     out.stats.total_overhead()
//! );
//! assert!(out.stats.reuses > 0);
//! ```

#![warn(missing_docs)]

pub use rtr_core as core;
pub use rtr_hw as hw;
pub use rtr_manager as manager;
pub use rtr_sim as sim;
pub use rtr_taskgraph as taskgraph;
pub use rtr_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::core::{
        compute_mobility, AnnotatedTemplate, FifoPolicy, LfdPolicy, LfuPolicy, LruPolicy,
        MruPolicy, RandomPolicy, TemplateCache,
    };
    pub use crate::hw::{DeviceSpec, RuId, RuPool};
    pub use crate::manager::{
        simulate, JobSpec, Lookahead, ManagerConfig, ReplacementPolicy, RunStats, Trace,
    };
    pub use crate::sim::{SimDuration, SimTime};
    pub use crate::taskgraph::{self, ConfigId, NodeId, TaskGraph, TaskGraphBuilder};
    pub use crate::{hw, manager, sim, workload};
}
